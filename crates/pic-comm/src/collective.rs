//! Collective operations over a [`Communicator`].
//!
//! Implemented with the classic binomial-tree / dissemination algorithms on
//! top of point-to-point messages — the same structure an MPI
//! implementation uses — so message counts scale as `O(P log P)` per
//! collective and the substrate exercises realistic traffic patterns.
//!
//! All collectives must be called by **every** member of the communicator
//! in the same order (the usual MPI rule); tag-sequence bookkeeping relies
//! on it.

use crate::comm::{splitmix64, Communicator, ReduceOp};

// ---------------------------------------------------------------------------
// byte codecs
// ---------------------------------------------------------------------------

/// Encode a slice of `u64` little-endian.
pub fn encode_u64s(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode a buffer of `u64`s; panics on misaligned input (protocol bug).
pub fn decode_u64s(buf: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    decode_u64s_into(buf, &mut out);
    out
}

/// [`decode_u64s`] into a caller-owned vector (cleared, capacity retained)
/// — the hot collective paths use this to avoid a per-call allocation.
pub fn decode_u64s_into(buf: &[u8], out: &mut Vec<u64>) {
    assert_eq!(buf.len() % 8, 0, "u64 buffer misaligned");
    out.clear();
    out.extend(
        buf.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
    );
}

/// Encode a slice of `f64` little-endian (bit-exact).
pub fn encode_f64s(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode a buffer of `f64`s.
pub fn decode_f64s(buf: &[u8]) -> Vec<f64> {
    let mut out = Vec::new();
    decode_f64s_into(buf, &mut out);
    out
}

/// [`decode_f64s`] into a caller-owned vector (cleared, capacity retained).
pub fn decode_f64s_into(buf: &[u8], out: &mut Vec<f64>) {
    assert_eq!(buf.len() % 8, 0, "f64 buffer misaligned");
    out.clear();
    out.extend(
        buf.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
    );
}

// ---------------------------------------------------------------------------
// barrier
// ---------------------------------------------------------------------------

/// Dissemination barrier: `⌈log₂ P⌉` rounds of pairwise signals.
pub fn barrier(comm: &Communicator) {
    let base = comm.next_coll_base();
    let size = comm.size();
    let rank = comm.rank();
    if size == 1 {
        return;
    }
    let mut round = 0u64;
    let mut dist = 1usize;
    while dist < size {
        let dst = (rank + dist) % size;
        let src = (rank + size - dist) % size;
        comm.send_coll(dst, base + round, Vec::<u8>::new());
        let _: Vec<u8> = comm.recv_coll(src, base + round);
        dist <<= 1;
        round += 1;
    }
}

// ---------------------------------------------------------------------------
// broadcast
// ---------------------------------------------------------------------------

/// Binomial-tree broadcast from `root`. Every rank returns the payload.
pub fn broadcast(comm: &Communicator, root: usize, data: Vec<u8>) -> Vec<u8> {
    let mut payload = data;
    bcast_tree(comm, root, &mut payload, None::<fn(&[u8])>);
    payload
}

/// Broadcast where each rank consumes the payload **by reference** via
/// `visit` instead of keeping it. Because the buffer is dead after the
/// forwarding sends, the last child send *moves* it instead of cloning —
/// one fewer full-payload copy per forwarding rank than [`broadcast`].
/// The hot allreduce paths pair this with the `_into` decoders.
pub fn broadcast_visit<F: FnOnce(&[u8])>(
    comm: &Communicator,
    root: usize,
    data: Vec<u8>,
    visit: F,
) {
    let mut payload = data;
    bcast_tree(comm, root, &mut payload, Some(visit));
}

/// Shared binomial tree: receive leg, optional in-place consumption, send
/// leg. With a visitor the payload's last use is the final child send, so
/// that send takes the buffer by value; without one the payload must
/// survive for the caller, so every child send clones.
fn bcast_tree<F: FnOnce(&[u8])>(
    comm: &Communicator,
    root: usize,
    payload: &mut Vec<u8>,
    visit: Option<F>,
) {
    let base = comm.next_coll_base();
    let size = comm.size();
    let rank = comm.rank();
    if size == 1 {
        if let Some(v) = visit {
            v(payload);
        }
        return;
    }
    let vrank = (rank + size - root) % size;
    let to_real = |v: usize| (v + root) % size;

    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            *payload = comm.recv_coll(to_real(vrank - mask), base);
            break;
        }
        mask <<= 1;
    }
    let retain = visit.is_none();
    if let Some(v) = visit {
        v(payload);
    }
    let mut m = mask >> 1;
    while m > 0 {
        if vrank + m < size {
            // If any child exists, a child at m == 1 exists too, so the
            // m == 1 send is always the last one.
            if m == 1 && !retain {
                comm.send_coll(to_real(vrank + 1), base, std::mem::take(payload));
                return;
            }
            comm.send_coll(to_real(vrank + m), base, payload.clone());
        }
        m >>= 1;
    }
}

// ---------------------------------------------------------------------------
// gather / allgather
// ---------------------------------------------------------------------------

/// Gather variable-length byte payloads to `root`. Returns `Some(vec of
/// per-rank payloads in rank order)` at root, `None` elsewhere.
pub fn gatherv(comm: &Communicator, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
    let base = comm.next_coll_base();
    let rank = comm.rank();
    let size = comm.size();
    if rank == root {
        let mut own = Some(data);
        let mut out = Vec::with_capacity(size);
        for src in 0..size {
            if src == root {
                out.push(own.take().unwrap());
            } else {
                out.push(comm.recv_coll(src, base));
            }
        }
        Some(out)
    } else {
        comm.send_coll(root, base, data);
        None
    }
}

/// All ranks receive every rank's payload, in rank order.
pub fn allgatherv(comm: &Communicator, data: Vec<u8>) -> Vec<Vec<u8>> {
    let gathered = gatherv(comm, 0, data);
    // Flatten with length prefixes for the broadcast leg.
    let packed = if comm.rank() == 0 {
        let parts = gathered.unwrap();
        let mut buf = Vec::new();
        for p in &parts {
            buf.extend_from_slice(&(p.len() as u64).to_le_bytes());
            buf.extend_from_slice(p);
        }
        buf
    } else {
        Vec::new()
    };
    let mut out = Vec::with_capacity(comm.size());
    broadcast_visit(comm, 0, packed, |buf| {
        let mut off = 0usize;
        while off < buf.len() {
            let len = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()) as usize;
            off += 8;
            out.push(buf[off..off + len].to_vec());
            off += len;
        }
    });
    assert_eq!(out.len(), comm.size(), "allgatherv framing corrupt");
    out
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

fn reduce_bytes<F>(comm: &Communicator, root: usize, mine: Vec<u8>, mut fold: F) -> Option<Vec<u8>>
where
    F: FnMut(Vec<u8>, Vec<u8>) -> Vec<u8>,
{
    let base = comm.next_coll_base();
    let size = comm.size();
    let rank = comm.rank();
    let vrank = (rank + size - root) % size;
    let to_real = |v: usize| (v + root) % size;

    let mut acc = mine;
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask == 0 {
            let peer = vrank | mask;
            if peer < size {
                let theirs = comm.recv_coll(to_real(peer), base);
                acc = fold(acc, theirs);
            }
        } else {
            comm.send_coll(to_real(vrank & !mask), base, acc);
            return None;
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Element-wise reduction of equal-length `u64` vectors to `root`. The
/// fold rewrites the accumulator's byte buffer in place — no per-fold
/// decode/encode allocations.
pub fn reduce_vec_u64(
    comm: &Communicator,
    root: usize,
    mine: &[u64],
    op: ReduceOp,
) -> Option<Vec<u64>> {
    let n = mine.len();
    let mut bv: Vec<u64> = Vec::new();
    reduce_bytes(comm, root, encode_u64s(mine), move |mut a, b| {
        decode_u64s_into(&b, &mut bv);
        assert_eq!(a.len(), n * 8, "reduce_vec_u64 length mismatch");
        assert_eq!(bv.len(), n, "reduce_vec_u64 length mismatch");
        for (chunk, y) in a.chunks_exact_mut(8).zip(&bv) {
            let x = u64::from_le_bytes(chunk.try_into().unwrap());
            chunk.copy_from_slice(&op.fold_u64(x, *y).to_le_bytes());
        }
        a
    })
    .map(|b| decode_u64s(&b))
}

/// Element-wise allreduce of equal-length `u64` vectors.
pub fn allreduce_vec_u64(comm: &Communicator, mine: &[u64], op: ReduceOp) -> Vec<u64> {
    let mut out = Vec::new();
    allreduce_vec_u64_into(comm, mine, op, &mut out);
    out
}

/// [`allreduce_vec_u64`] into a caller-owned vector (cleared, capacity
/// retained) — the per-step load aggregations use this to stay
/// allocation-free in steady state.
pub fn allreduce_vec_u64_into(comm: &Communicator, mine: &[u64], op: ReduceOp, out: &mut Vec<u64>) {
    let reduced = reduce_vec_u64(comm, 0, mine, op);
    let packed = reduced.map(|v| encode_u64s(&v)).unwrap_or_default();
    broadcast_visit(comm, 0, packed, |b| decode_u64s_into(b, out));
}

/// Scalar u64 allreduce.
pub fn allreduce_u64(comm: &Communicator, mine: u64, op: ReduceOp) -> u64 {
    allreduce_vec_u64(comm, &[mine], op)[0]
}

/// Element-wise allreduce of equal-length `f64` vectors (deterministic
/// fold order: fixed binomial tree).
pub fn allreduce_vec_f64(comm: &Communicator, mine: &[f64], op: ReduceOp) -> Vec<f64> {
    let mut out = Vec::new();
    allreduce_vec_f64_into(comm, mine, op, &mut out);
    out
}

/// [`allreduce_vec_f64`] into a caller-owned vector (cleared, capacity
/// retained). The fold rewrites the accumulator's bytes in place.
pub fn allreduce_vec_f64_into(comm: &Communicator, mine: &[f64], op: ReduceOp, out: &mut Vec<f64>) {
    let n = mine.len();
    let mut bv: Vec<f64> = Vec::new();
    let reduced = reduce_bytes(comm, 0, encode_f64s(mine), move |mut a, b| {
        decode_f64s_into(&b, &mut bv);
        assert_eq!(a.len(), n * 8);
        for (chunk, y) in a.chunks_exact_mut(8).zip(&bv) {
            let x = f64::from_le_bytes(chunk.try_into().unwrap());
            chunk.copy_from_slice(&op.fold_f64(x, *y).to_le_bytes());
        }
        a
    });
    let packed = reduced.unwrap_or_default();
    broadcast_visit(comm, 0, packed, |b| decode_f64s_into(b, out));
}

/// Scalar f64 allreduce.
pub fn allreduce_f64(comm: &Communicator, mine: f64, op: ReduceOp) -> f64 {
    allreduce_vec_f64(comm, &[mine], op)[0]
}

/// u128 allreduce (for the id checksum, which can exceed u64).
pub fn allreduce_u128(comm: &Communicator, mine: u128, op: ReduceOp) -> u128 {
    let reduced = reduce_bytes(comm, 0, mine.to_le_bytes().to_vec(), move |a, b| {
        let x = u128::from_le_bytes(a.try_into().unwrap());
        let y = u128::from_le_bytes(b.try_into().unwrap());
        op.fold_u128(x, y).to_le_bytes().to_vec()
    });
    let packed = reduced.unwrap_or_default();
    u128::from_le_bytes(broadcast(comm, 0, packed).try_into().unwrap())
}

/// Logical AND allreduce (verification merging).
pub fn allreduce_bool_and(comm: &Communicator, mine: bool) -> bool {
    allreduce_u64(comm, mine as u64, ReduceOp::Min) == 1
}

// ---------------------------------------------------------------------------
// scans
// ---------------------------------------------------------------------------

/// Inclusive prefix reduction: rank `r` receives `fold(v₀, …, v_r)`.
/// Linear-chain algorithm (deterministic order, O(P) latency — scans are
/// off the per-step critical path in this kernel).
pub fn scan_u64(comm: &Communicator, mine: u64, op: ReduceOp) -> u64 {
    let base = comm.next_coll_base();
    let rank = comm.rank();
    let mut acc = mine;
    if rank > 0 {
        let buf: Vec<u8> = comm.recv_coll(rank - 1, base);
        let upstream = u64::from_le_bytes(buf[..8].try_into().unwrap());
        acc = op.fold_u64(upstream, acc);
    }
    if rank + 1 < comm.size() {
        comm.send_coll(rank + 1, base, encode_u64s(&[acc]));
    }
    acc
}

/// Exclusive prefix sum: rank `r` receives `Σ_{q<r} v_q` (0 at rank 0).
/// The classic offset computation for ordered global ids.
pub fn exscan_sum_u64(comm: &Communicator, mine: u64) -> u64 {
    let inclusive = scan_u64(comm, mine, ReduceOp::Sum);
    inclusive - mine
}

// ---------------------------------------------------------------------------
// reduce_scatter
// ---------------------------------------------------------------------------

/// Element-wise sum of per-rank `u64` vectors of length `P`, scattering
/// element `r` to rank `r` — the one-call form of the diffusion balancer's
/// "every processor column learns its own aggregated count".
///
/// Pairwise recursive-halving algorithm: the exchanged data volume halves
/// every round, so no rank ever materializes the full reduced `P`-vector
/// (unlike the allreduce-based oracle,
/// [`reduce_scatter_sum_u64_via_allreduce`]). Non-power-of-two sizes fold
/// the top `P - 2^k` ranks into partners first and scatter their slots
/// back at the end.
pub fn reduce_scatter_sum_u64(comm: &Communicator, mine: &[u64]) -> u64 {
    let size = comm.size();
    assert_eq!(mine.len(), size, "one element per rank");
    if size == 1 {
        return mine[0];
    }
    let base = comm.next_coll_base();
    let rank = comm.rank();
    let pow2 = if size.is_power_of_two() {
        size
    } else {
        size.next_power_of_two() >> 1
    };
    let rem = size - pow2;
    // Tag layout: base for the pre-phase, base + 1 + round for the halving
    // rounds (round < 20), base + 30 for the post-phase scatter.
    const POST_TAG: u64 = 30;

    let mut acc: Vec<u64> = mine.to_vec();
    if rank >= pow2 {
        // Fold into the partner, then wait for our scattered slot.
        comm.send_coll(rank - pow2, base, encode_u64s(&acc));
        let buf: Vec<u8> = comm.recv_coll(rank - pow2, base + POST_TAG);
        return u64::from_le_bytes(buf[..8].try_into().unwrap());
    }
    if rank < rem {
        let theirs: Vec<u8> = comm.recv_coll(rank + pow2, base);
        assert_eq!(theirs.len(), size * 8, "reduce_scatter framing");
        for (x, chunk) in acc.iter_mut().zip(theirs.chunks_exact(8)) {
            *x += u64::from_le_bytes(chunk.try_into().unwrap());
        }
    }

    // Group range [a, b) owns final slots a..b plus the slots of the
    // pre-folded ranks a+pow2..min(b+pow2, size), serialized ascending.
    let push_slots = |a: usize, b: usize, acc: &[u64], out: &mut Vec<u8>| {
        for i in (a..b).chain(a + pow2..(b + pow2).min(size)) {
            out.extend_from_slice(&acc[i].to_le_bytes());
        }
    };
    let mut lo = 0usize;
    let mut len = pow2;
    let mut round = 1u64;
    while len > 1 {
        let half = len / 2;
        let lower = rank < lo + half;
        let (my_a, my_b, their_a, their_b) = if lower {
            (lo, lo + half, lo + half, lo + len)
        } else {
            (lo + half, lo + len, lo, lo + half)
        };
        let partner = if lower { rank + half } else { rank - half };
        let mut buf = Vec::new();
        push_slots(their_a, their_b, &acc, &mut buf);
        comm.send_coll(partner, base + round, buf);
        let got: Vec<u8> = comm.recv_coll(partner, base + round);
        let mut chunks = got.chunks_exact(8);
        for i in (my_a..my_b).chain(my_a + pow2..(my_b + pow2).min(size)) {
            let c = chunks.next().expect("reduce_scatter framing");
            acc[i] += u64::from_le_bytes(c.try_into().unwrap());
        }
        assert!(chunks.next().is_none(), "reduce_scatter framing");
        lo = my_a;
        len = half;
        round += 1;
    }
    debug_assert_eq!(lo, rank);
    if rank < rem {
        comm.send_coll(
            rank + pow2,
            base + POST_TAG,
            acc[rank + pow2].to_le_bytes().to_vec(),
        );
    }
    acc[rank]
}

/// The pre-PR-8 implementation — a full vector allreduce followed by
/// picking one's own slot. Kept as the test oracle for the pairwise
/// algorithm above.
pub fn reduce_scatter_sum_u64_via_allreduce(comm: &Communicator, mine: &[u64]) -> u64 {
    assert_eq!(mine.len(), comm.size(), "one element per rank");
    let all = allreduce_vec_u64(comm, mine, ReduceOp::Sum);
    all[comm.rank()]
}

// ---------------------------------------------------------------------------
// sendrecv
// ---------------------------------------------------------------------------

/// Combined send+receive (deadlock-free pairwise exchange): sends `data`
/// to `dst` and returns the message received from `src`, both with `tag`.
pub fn sendrecv(comm: &Communicator, dst: usize, src: usize, tag: u64, data: Vec<u8>) -> Vec<u8> {
    comm.send(dst, tag, data);
    comm.recv(src, tag)
}

// ---------------------------------------------------------------------------
// alltoallv
// ---------------------------------------------------------------------------

/// Personalized all-to-all: `outgoing[d]` goes to rank `d`; returns the
/// payload received from every rank (in rank order). Zero-length payloads
/// are delivered too (they serve as "nothing for you" markers). Generic
/// over the wire lane — byte buffers or typed particle buffers.
pub fn alltoallv<P: crate::payload::WirePayload>(comm: &Communicator, outgoing: Vec<P>) -> Vec<P> {
    let mut outgoing = outgoing;
    let mut incoming = Vec::new();
    alltoallv_take_into(comm, &mut outgoing, &mut incoming);
    incoming
}

/// [`alltoallv`] with caller-owned scratch on both sides: each payload is
/// *taken* out of `outgoing` (replaced by an empty buffer, so the outer
/// vector and its slots survive for reuse) and arrivals land in
/// `incoming` (cleared, capacity retained). The payload buffers
/// themselves still move into the transport — channel ownership transfer,
/// like an MPI send buffer — but receivers can recycle the buffers they
/// get, so a steady-state exchange *circulates* capacity instead of
/// allocating it.
pub fn alltoallv_take_into<P: crate::payload::WirePayload>(
    comm: &Communicator,
    outgoing: &mut [P],
    incoming: &mut Vec<P>,
) {
    let handle = crate::sparse::alltoallv_start(comm, outgoing);
    crate::sparse::alltoallv_finish_into(comm, handle, incoming);
}

// ---------------------------------------------------------------------------
// split
// ---------------------------------------------------------------------------

/// Collective communicator split: ranks with equal `color` form a new
/// communicator, ordered by `(key, old rank)`. Analogous to
/// `MPI_Comm_split`.
pub fn split(comm: &Communicator, color: u64, key: u64) -> Communicator {
    let seq = comm.next_split_seq();
    let triple = [color, key, comm.rank() as u64];
    let all = allgatherv(comm, encode_u64s(&triple));
    let mut members: Vec<(u64, usize)> = all
        .iter()
        .map(|b| decode_u64s(b))
        .filter(|t| t[0] == color)
        .map(|t| (t[1], t[2] as usize))
        .collect();
    members.sort_unstable();
    let my_rank = members
        .iter()
        .position(|&(_, r)| r == comm.rank())
        .expect("split: caller missing from its own color group");
    let world_members: Vec<usize> = members
        .iter()
        .map(|&(_, r)| comm.world_rank_of(r))
        .collect();
    let ctx = splitmix64(splitmix64(comm.ctx() ^ (seq << 32)) ^ color);
    Communicator::from_parts(
        comm.endpoint().clone(),
        ctx,
        std::sync::Arc::new(world_members),
        my_rank,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_threads;

    #[test]
    fn codec_roundtrip() {
        let v = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&v)), v);
        let f = vec![0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_f64s(&encode_f64s(&f)), f);
    }

    #[test]
    fn codec_into_reuses_capacity() {
        let v = vec![3u64, 4, 5];
        let mut out = Vec::with_capacity(8);
        let cap = out.capacity();
        decode_u64s_into(&encode_u64s(&v), &mut out);
        assert_eq!(out, v);
        assert_eq!(out.capacity(), cap, "no reallocation under capacity");
        let f = vec![1.5f64, -2.5];
        let mut fout = Vec::with_capacity(4);
        decode_f64s_into(&encode_f64s(&f), &mut fout);
        assert_eq!(fout, f);
    }

    #[test]
    fn broadcast_visit_matches_broadcast() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let got = run_threads(p, move |comm| {
                    let data = if comm.rank() == root {
                        vec![7, root as u8]
                    } else {
                        Vec::new()
                    };
                    let mut seen = Vec::new();
                    broadcast_visit(&comm, root, data, |b| seen.extend_from_slice(b));
                    seen
                });
                for g in got {
                    assert_eq!(g, vec![7, root as u8]);
                }
            }
        }
    }

    #[test]
    fn allreduce_vec_into_reuses_scratch() {
        let got = run_threads(3, |comm| {
            let mut out = Vec::new();
            let mut fout = Vec::new();
            for step in 0..3u64 {
                let mine = vec![comm.rank() as u64 + step, 1];
                allreduce_vec_u64_into(&comm, &mine, ReduceOp::Sum, &mut out);
                let fmine = vec![comm.rank() as f64];
                allreduce_vec_f64_into(&comm, &fmine, ReduceOp::Max, &mut fout);
            }
            (out, fout)
        });
        for (out, fout) in got {
            assert_eq!(out, vec![3 + 3 * 2, 3]);
            assert_eq!(fout, vec![2.0]);
        }
    }

    #[test]
    fn reduce_scatter_matches_allreduce_oracle() {
        for p in [1usize, 2, 3, 4, 5, 6, 7, 8] {
            let got = run_threads(p, move |comm| {
                let mine: Vec<u64> = (0..p)
                    .map(|i| (comm.rank() * 31 + i * 7 + 1) as u64)
                    .collect();
                let pairwise = reduce_scatter_sum_u64(&comm, &mine);
                let oracle = reduce_scatter_sum_u64_via_allreduce(&comm, &mine);
                (pairwise, oracle)
            });
            for (r, (pairwise, oracle)) in got.into_iter().enumerate() {
                assert_eq!(pairwise, oracle, "size {p} rank {r}");
            }
        }
    }

    #[test]
    fn barrier_completes_all_sizes() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            run_threads(p, |comm| {
                for _ in 0..3 {
                    barrier(&comm);
                }
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let got = run_threads(p, move |comm| {
                    let data = if comm.rank() == root {
                        vec![9, 9, root as u8]
                    } else {
                        Vec::new()
                    };
                    broadcast(&comm, root, data)
                });
                for g in got {
                    assert_eq!(g, vec![9, 9, root as u8]);
                }
            }
        }
    }

    #[test]
    fn gatherv_collects_in_rank_order() {
        let got = run_threads(5, |comm| {
            gatherv(&comm, 2, vec![comm.rank() as u8; comm.rank()])
        });
        for (r, g) in got.into_iter().enumerate() {
            if r == 2 {
                let parts = g.unwrap();
                assert_eq!(parts.len(), 5);
                for (i, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![i as u8; i]);
                }
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn allgatherv_everyone_sees_everything() {
        let got = run_threads(4, |comm| allgatherv(&comm, vec![comm.rank() as u8 + 10]));
        for g in got {
            assert_eq!(g, vec![vec![10], vec![11], vec![12], vec![13]]);
        }
    }

    #[test]
    fn allreduce_scalar_ops() {
        for p in [1usize, 2, 3, 6, 9] {
            let sums = run_threads(p, |comm| {
                allreduce_u64(&comm, comm.rank() as u64 + 1, ReduceOp::Sum)
            });
            assert!(sums.iter().all(|&s| s == (p * (p + 1) / 2) as u64));
            let mins = run_threads(p, |comm| {
                allreduce_u64(&comm, comm.rank() as u64 + 5, ReduceOp::Min)
            });
            assert!(mins.iter().all(|&m| m == 5));
            let maxs = run_threads(p, |comm| {
                allreduce_f64(&comm, comm.rank() as f64, ReduceOp::Max)
            });
            assert!(maxs.iter().all(|&m| m == (p - 1) as f64));
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let got = run_threads(3, |comm| {
            let mine = vec![comm.rank() as u64, 10 * comm.rank() as u64, 1];
            allreduce_vec_u64(&comm, &mine, ReduceOp::Sum)
        });
        for g in got {
            assert_eq!(g, vec![3, 30, 3]);
        }
    }

    #[test]
    fn allreduce_u128_checksums() {
        let big = (u64::MAX as u128) * 3;
        let got = run_threads(4, move |comm| {
            allreduce_u128(&comm, big / 4 + comm.rank() as u128, ReduceOp::Sum)
        });
        let want = (big / 4) * 4 + 6;
        assert!(got.iter().all(|&g| g == want));
    }

    #[test]
    fn bool_and_detects_any_false() {
        let got = run_threads(4, |comm| allreduce_bool_and(&comm, comm.rank() != 2));
        assert!(got.iter().all(|&g| !g));
        let got = run_threads(4, |comm| allreduce_bool_and(&comm, true));
        assert!(got.iter().all(|&g| g));
    }

    #[test]
    fn scan_inclusive_prefixes() {
        let got = run_threads(5, |comm| {
            scan_u64(&comm, comm.rank() as u64 + 1, ReduceOp::Sum)
        });
        assert_eq!(got, vec![1, 3, 6, 10, 15]);
        let got = run_threads(4, |comm| {
            scan_u64(&comm, 10 - comm.rank() as u64, ReduceOp::Min)
        });
        assert_eq!(got, vec![10, 9, 8, 7]);
    }

    #[test]
    fn exscan_offsets() {
        let got = run_threads(4, |comm| {
            exscan_sum_u64(&comm, (comm.rank() as u64 + 1) * 100)
        });
        assert_eq!(got, vec![0, 100, 300, 600]);
    }

    #[test]
    fn scan_single_rank() {
        let got = run_threads(1, |comm| scan_u64(&comm, 7, ReduceOp::Sum));
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn reduce_scatter_gives_own_slot() {
        let got = run_threads(3, |comm| {
            let mine: Vec<u64> = (0..3).map(|i| (comm.rank() * 10 + i) as u64).collect();
            reduce_scatter_sum_u64(&comm, &mine)
        });
        // Element i summed over ranks: (0+10+20) + 3i = 30 + 3i.
        assert_eq!(got, vec![30, 33, 36]);
    }

    #[test]
    fn sendrecv_ring_shift() {
        let got = run_threads(5, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let back = sendrecv(&comm, right, left, 9, vec![comm.rank() as u8]);
            back[0]
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn alltoallv_personalized_exchange() {
        let got = run_threads(4, |comm| {
            let outgoing: Vec<Vec<u8>> =
                (0..4).map(|d| vec![(10 * comm.rank() + d) as u8]).collect();
            alltoallv(&comm, outgoing)
        });
        for (r, incoming) in got.into_iter().enumerate() {
            for (s, payload) in incoming.into_iter().enumerate() {
                assert_eq!(payload, vec![(10 * s + r) as u8]);
            }
        }
    }

    #[test]
    fn split_into_rows_and_columns() {
        // 2×3 grid: color by row then by column, reduce within each.
        let got = run_threads(6, |comm| {
            let row = comm.rank() / 3;
            let col = comm.rank() % 3;
            let row_comm = split(&comm, row as u64, col as u64);
            let col_comm = split(&comm, 100 + col as u64, row as u64);
            let row_sum = allreduce_u64(&row_comm, comm.rank() as u64, ReduceOp::Sum);
            let col_sum = allreduce_u64(&col_comm, comm.rank() as u64, ReduceOp::Sum);
            (row_comm.size(), col_comm.size(), row_sum, col_sum)
        });
        for (r, (rs, cs, row_sum, col_sum)) in got.into_iter().enumerate() {
            assert_eq!(rs, 3);
            assert_eq!(cs, 2);
            let row = r / 3;
            let col = r % 3;
            assert_eq!(row_sum, (3 * row) as u64 * 3 / 1 + 3, "row {row}");
            assert_eq!(col_sum, (col + col + 3) as u64);
        }
    }

    #[test]
    fn split_orders_by_key() {
        let got = run_threads(4, |comm| {
            // Reverse order: key = size - rank.
            let sub = split(&comm, 0, (comm.size() - comm.rank()) as u64);
            sub.rank()
        });
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn subcomm_messages_do_not_leak_to_parent() {
        run_threads(2, |comm| {
            let sub = split(&comm, 0, comm.rank() as u64);
            if comm.rank() == 0 {
                sub.send(1, 5, vec![1]);
                comm.send(1, 5, vec![2]);
            } else {
                // Receive in the opposite order: context isolation must
                // route each message to the right receive.
                assert_eq!(comm.recv(0, 5), vec![2]);
                assert_eq!(sub.recv(0, 5), vec![1]);
            }
        });
    }
}
