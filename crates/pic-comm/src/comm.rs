//! The [`Communicator`] — a rank's handle on a (sub-)communicator.

use crate::endpoint::{CommMetrics, Endpoint};
use crate::payload::WirePayload;
use std::cell::Cell;
use std::sync::Arc;

/// User-visible message tag. Must stay below [`Tag::MAX_USER`]; larger
/// values are reserved for collectives.
pub type Tag = u64;

/// Reduction operators for the numeric collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    #[inline]
    pub fn fold_u64(&self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    #[inline]
    pub fn fold_f64(&self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    #[inline]
    pub fn fold_u128(&self, a: u128, b: u128) -> u128 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Highest tag bit flags a collective-internal message.
const COLLECTIVE_FLAG: u64 = 1 << 63;

/// Completion handle for a nonblocking send started with
/// [`Communicator::isend`]. Sends never block on this transport (unbounded
/// channels), so the handle completes trivially — it exists so call sites
/// are written against the MPI-shaped API and keep working if the
/// transport grows backpressure.
#[derive(Debug)]
#[must_use = "an isend must be completed with wait()"]
pub struct SendHandle {
    _priv: (),
}

impl SendHandle {
    /// Has the send completed? Always true on this transport.
    pub fn test(&self) -> bool {
        true
    }

    /// Block until the send completes (a no-op here).
    pub fn wait(self) {}
}

/// Completion handle for a nonblocking receive posted with
/// [`Communicator::irecv`]. The message is claimed when `test` first
/// matches or when `wait` is called; the handle pins `(src, tag)` so the
/// match is exactly the one the post described.
#[derive(Debug)]
#[must_use = "an irecv must be completed with test() or wait()"]
pub struct RecvHandle {
    src: usize,
    tag: Tag,
}

impl RecvHandle {
    /// Non-blocking completion probe: returns the payload when the
    /// matching message has arrived, `None` otherwise. Call with the same
    /// communicator the handle was created from.
    pub fn test(&self, comm: &Communicator) -> Option<Vec<u8>> {
        comm.try_recv(self.src, self.tag)
    }

    /// Block until the matching message arrives and return its payload.
    pub fn wait(self, comm: &Communicator) -> Vec<u8> {
        comm.recv(self.src, self.tag)
    }
}

/// A communicator: an ordered group of ranks with an isolated message
/// context. Clone-free by design — each rank holds exactly one
/// `Communicator` per group it belongs to.
pub struct Communicator {
    ep: Arc<Endpoint>,
    ctx: u64,
    /// World ranks of the members, indexed by communicator rank.
    members: Arc<Vec<usize>>,
    my_rank: usize,
    coll_seq: Cell<u64>,
    split_seq: Cell<u64>,
}

impl Communicator {
    /// Maximum user tag value.
    pub const MAX_USER_TAG: u64 = (1 << 56) - 1;

    /// Wrap an endpoint as the world communicator.
    pub fn world(ep: Arc<Endpoint>) -> Communicator {
        let size = ep.world_size();
        let rank = ep.world_rank();
        Communicator {
            ep,
            ctx: 0,
            members: Arc::new((0..size).collect()),
            my_rank: rank,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    pub(crate) fn from_parts(
        ep: Arc<Endpoint>,
        ctx: u64,
        members: Arc<Vec<usize>>,
        my_rank: usize,
    ) -> Communicator {
        Communicator {
            ep,
            ctx,
            members,
            my_rank,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    /// Rank of this process within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of communicator member `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// Send a buffer to communicator rank `dst` with a user tag,
    /// surrendering its ownership to the transport. Generic over the wire
    /// lane — `Vec<u8>` (oracle) or `Vec<Particle>` (typed fast lane).
    pub fn send_payload<P: WirePayload>(&self, dst: usize, tag: Tag, data: P) {
        assert!(tag <= Self::MAX_USER_TAG, "tag {tag} exceeds MAX_USER_TAG");
        self.ep.send_payload(self.members[dst], self.ctx, tag, data);
    }

    /// Blocking receive of a `P` buffer from communicator rank `src` with
    /// a user tag. A matching message of the wrong payload kind panics.
    pub fn recv_payload<P: WirePayload>(&self, src: usize, tag: Tag) -> P {
        assert!(tag <= Self::MAX_USER_TAG, "tag {tag} exceeds MAX_USER_TAG");
        self.ep.recv_payload(self.members[src], self.ctx, tag)
    }

    /// Send `data` to communicator rank `dst` with a user tag.
    pub fn send(&self, dst: usize, tag: Tag, data: Vec<u8>) {
        self.send_payload(dst, tag, data);
    }

    /// Blocking receive from communicator rank `src` with a user tag.
    pub fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        self.recv_payload(src, tag)
    }

    /// Non-blocking receive from communicator rank `src` with a user tag.
    /// Returns `None` when no matching message has arrived yet.
    pub fn try_recv(&self, src: usize, tag: Tag) -> Option<Vec<u8>> {
        assert!(tag <= Self::MAX_USER_TAG, "tag {tag} exceeds MAX_USER_TAG");
        self.ep.try_recv(self.members[src], self.ctx, tag)
    }

    /// Nonblocking send. The transport is eager (sends never block), so the
    /// returned handle is trivially complete; see [`SendHandle`].
    pub fn isend(&self, dst: usize, tag: Tag, data: Vec<u8>) -> SendHandle {
        self.send(dst, tag, data);
        SendHandle { _priv: () }
    }

    /// Post a nonblocking receive for `(src, tag)`. Complete it with
    /// [`RecvHandle::test`] or [`RecvHandle::wait`].
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvHandle {
        assert!(tag <= Self::MAX_USER_TAG, "tag {tag} exceeds MAX_USER_TAG");
        RecvHandle { src, tag }
    }

    /// Internal: send/recv with a collective-reserved tag. Generic over
    /// the wire lane so the alltoallv family can route typed buffers.
    pub(crate) fn send_coll<P: WirePayload>(&self, dst: usize, tag: u64, data: P) {
        self.ep
            .send_payload(self.members[dst], self.ctx, COLLECTIVE_FLAG | tag, data);
    }

    pub(crate) fn recv_coll<P: WirePayload>(&self, src: usize, tag: u64) -> P {
        self.ep
            .recv_payload(self.members[src], self.ctx, COLLECTIVE_FLAG | tag)
    }

    /// Allocate a fresh tag block for one collective operation. All members
    /// call collectives in the same order (an MPI requirement), so the
    /// sequence numbers agree across ranks.
    pub(crate) fn next_coll_base(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        seq << 20 // up to 2^20 sub-messages per collective
    }

    pub(crate) fn next_split_seq(&self) -> u64 {
        let s = self.split_seq.get();
        self.split_seq.set(s + 1);
        s
    }

    pub(crate) fn ctx(&self) -> u64 {
        self.ctx
    }

    pub(crate) fn endpoint(&self) -> &Arc<Endpoint> {
        &self.ep
    }

    /// Traffic counters of the underlying endpoint (whole world, all
    /// communicators of this rank).
    pub fn metrics(&self) -> CommMetrics {
        self.ep.metrics()
    }
}

/// splitmix64 — deterministic context-id derivation for `split`.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_identity_mapping() {
        let eps = Endpoint::world(3);
        let c = Communicator::world(eps[1].clone());
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.world_rank_of(2), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_USER_TAG")]
    fn oversized_tag_rejected() {
        let eps = Endpoint::world(1);
        let c = Communicator::world(eps[0].clone());
        c.send(0, u64::MAX, vec![]);
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.fold_u64(2, 3), 5);
        assert_eq!(ReduceOp::Min.fold_u64(2, 3), 2);
        assert_eq!(ReduceOp::Max.fold_u64(2, 3), 3);
        assert_eq!(ReduceOp::Sum.fold_f64(0.5, 0.25), 0.75);
        assert_eq!(ReduceOp::Max.fold_u128(7, 9), 9);
    }

    #[test]
    fn isend_irecv_roundtrip() {
        let eps = Endpoint::world(1);
        let c = Communicator::world(eps[0].clone());
        let r = c.irecv(0, 4);
        assert!(r.test(&c).is_none(), "nothing sent yet");
        let s = c.isend(0, 4, vec![1, 2]);
        assert!(s.test());
        s.wait();
        assert_eq!(r.test(&c), Some(vec![1, 2]));
    }

    #[test]
    fn irecv_wait_blocks_until_match() {
        let eps = Endpoint::world(1);
        let c = Communicator::world(eps[0].clone());
        let r = c.irecv(0, 8);
        c.send(0, 8, vec![3]);
        assert_eq!(r.wait(&c), vec![3]);
        assert_eq!(c.try_recv(0, 8), None);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let a = splitmix64(1);
        let b = splitmix64(1);
        let c = splitmix64(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
