//! Runtime load-balancing strategies.
//!
//! These are object-migration strategies in the Charm++ mold: input is the
//! measured load of every VP and the current VP→core assignment; output is
//! a new assignment. They are deliberately **locality-oblivious** — that is
//! the property of runtime-orchestrated balancing the paper's experiments
//! probe ("the AMPI implementation is agnostic of the underlying problem
//! characteristics").
//!
//! The decision logic itself now lives in [`pic_cluster::balancer`]
//! alongside every other strategy (shared `LoadBalancer` trait, NaN-safe
//! total-order comparisons); this module re-exports it under the
//! historical names.

pub use pic_cluster::balancer::{greedy_assign, imbalance, refine_assign};

/// Strategy selector (the historical name for
/// [`pic_cluster::balancer::VpStrategy`]).
pub use pic_cluster::balancer::VpStrategy as Balancer;
