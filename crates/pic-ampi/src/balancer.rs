//! Runtime load-balancing strategies.
//!
//! These are object-migration strategies in the Charm++ mold: input is the
//! measured load of every VP and the current VP→core assignment; output is
//! a new assignment. They are deliberately **locality-oblivious** — that is
//! the property of runtime-orchestrated balancing the paper's experiments
//! probe ("the AMPI implementation is agnostic of the underlying problem
//! characteristics").

/// Strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balancer {
    /// No balancing (over-decomposition only).
    None,
    /// Full remap: sort VPs by load descending, assign each to the
    /// currently least-loaded core (Charm++ `GreedyLB`). Excellent balance,
    /// maximal migration churn.
    Greedy,
    /// Iterative refinement: repeatedly move a VP from the most-loaded to
    /// the least-loaded core ("migrates VPs from the most loaded to the
    /// least loaded core" — the strategy the paper's experiments used).
    /// Bounded migration churn.
    Refine {
        /// Upper bound on moves per invocation.
        max_moves: usize,
    },
}

impl Balancer {
    /// The paper's choice with a sensible move bound.
    pub fn paper_default() -> Balancer {
        Balancer::Refine {
            max_moves: usize::MAX,
        }
    }

    /// Compute a new assignment. `loads[vp]` is the VP's measured load;
    /// `current[vp]` its core. Returns the new `Vec` (possibly identical).
    pub fn rebalance(&self, loads: &[f64], current: &[usize], cores: usize) -> Vec<usize> {
        match *self {
            Balancer::None => current.to_vec(),
            Balancer::Greedy => greedy_assign(loads, cores),
            Balancer::Refine { max_moves } => refine_assign(loads, current, cores, max_moves),
        }
    }
}

/// Charm++-GreedyLB-style full remap.
pub fn greedy_assign(loads: &[f64], cores: usize) -> Vec<usize> {
    assert!(cores >= 1);
    let mut order: Vec<usize> = (0..loads.len()).collect();
    // Heaviest first; ties by VP index for determinism.
    order.sort_by(|&a, &b| loads[b].partial_cmp(&loads[a]).unwrap().then(a.cmp(&b)));
    // Min-heap of (core load, core id).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap()
                .then(self.1.cmp(&other.1))
        }
    }
    let mut heap: BinaryHeap<Reverse<Entry>> = (0..cores).map(|c| Reverse(Entry(0.0, c))).collect();
    let mut assignment = vec![0usize; loads.len()];
    for vp in order {
        let Reverse(Entry(load, core)) = heap.pop().unwrap();
        assignment[vp] = core;
        heap.push(Reverse(Entry(load + loads[vp], core)));
    }
    assignment
}

/// Total-ordered f64 key (loads are finite and non-negative).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Iterative most→least refinement.
///
/// Each move takes the heaviest VP on the most-loaded core that fits in the
/// max−min gap and ships it to the least-loaded core; every move strictly
/// decreases `Σ load²`, so the loop terminates. Ordered sets keep each move
/// `O(log)` — at 3,072 cores × 49k VPs a full rebalance is milliseconds,
/// not minutes.
pub fn refine_assign(
    loads: &[f64],
    current: &[usize],
    cores: usize,
    max_moves: usize,
) -> Vec<usize> {
    use std::collections::BTreeSet;
    assert_eq!(loads.len(), current.len());
    let mut assignment = current.to_vec();
    let mut core_loads = vec![0.0f64; cores];
    let mut per_core: Vec<BTreeSet<(Key, usize)>> = vec![BTreeSet::new(); cores];
    for (vp, &c) in assignment.iter().enumerate() {
        core_loads[c] += loads[vp];
        if loads[vp] > 0.0 {
            per_core[c].insert((Key(loads[vp]), vp));
        }
    }
    let mut order: BTreeSet<(Key, usize)> = core_loads
        .iter()
        .enumerate()
        .map(|(c, &l)| (Key(l), c))
        .collect();
    // Hard cap keeps one invocation O(n log n) even when many tiny VPs
    // could be shuffled indefinitely for vanishing gains.
    let max_moves = max_moves.min(2 * loads.len());
    let mut moves = 0usize;
    while moves < max_moves {
        let &(Key(max_load), max_core) = order.last().unwrap();
        let &(Key(min_load), min_core) = order.first().unwrap();
        let gap = max_load - min_load;
        // Stop when the gap closes or becomes negligible (guards against
        // f64 increments too small to change the potential function).
        if gap <= 1e-9 * max_load.max(1.0) || max_core == min_core {
            break;
        }
        // Heaviest VP on the max core with load strictly inside the gap.
        let candidate = per_core[max_core]
            .range(..(Key(gap), 0usize))
            .next_back()
            .copied();
        let Some((Key(load), vp)) = candidate else {
            break;
        };
        debug_assert!(load > 0.0 && load < gap);
        per_core[max_core].remove(&(Key(load), vp));
        per_core[min_core].insert((Key(load), vp));
        order.remove(&(Key(max_load), max_core));
        order.remove(&(Key(min_load), min_core));
        core_loads[max_core] -= load;
        core_loads[min_core] += load;
        order.insert((Key(core_loads[max_core]), max_core));
        order.insert((Key(core_loads[min_core]), min_core));
        assignment[vp] = min_core;
        moves += 1;
    }
    assignment
}

/// Max/avg core-load ratio under an assignment — the balance quality
/// metric used by tests and the model.
pub fn imbalance(loads: &[f64], assignment: &[usize], cores: usize) -> f64 {
    let mut core_loads = vec![0.0f64; cores];
    for (vp, &c) in assignment.iter().enumerate() {
        core_loads[c] += loads[vp];
    }
    let total: f64 = core_loads.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let max = core_loads.iter().cloned().fold(0.0f64, f64::max);
    max / (total / cores as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_balances_skewed_loads() {
        let loads = vec![10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0];
        let asg = greedy_assign(&loads, 2);
        let imb = imbalance(&loads, &asg, 2);
        assert!(imb < 1.1, "greedy imbalance {imb}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let loads = vec![3.0, 3.0, 3.0, 3.0];
        assert_eq!(greedy_assign(&loads, 2), greedy_assign(&loads, 2));
    }

    #[test]
    fn refine_moves_from_most_to_least() {
        // Core 0 has everything.
        let loads = vec![5.0, 4.0, 3.0, 2.0];
        let current = vec![0, 0, 0, 0];
        let asg = refine_assign(&loads, &current, 2, usize::MAX);
        let imb = imbalance(&loads, &asg, 2);
        assert!(imb < 1.3, "refine imbalance {imb}, assignment {asg:?}");
    }

    #[test]
    fn refine_respects_move_budget() {
        let loads = vec![5.0, 4.0, 3.0, 2.0, 1.0, 1.0];
        let current = vec![0; 6];
        let asg = refine_assign(&loads, &current, 3, 1);
        let moved = asg.iter().zip(&current).filter(|(a, b)| a != b).count();
        assert_eq!(moved, 1);
    }

    #[test]
    fn refine_never_increases_max_load() {
        let loads = vec![7.0, 1.0, 2.0, 2.0, 3.0, 1.0, 4.0, 2.0];
        let current = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let before = imbalance(&loads, &current, 4);
        let asg = refine_assign(&loads, &current, 4, usize::MAX);
        let after = imbalance(&loads, &asg, 4);
        assert!(
            after <= before + 1e-12,
            "refine must not worsen: {before} → {after}"
        );
    }

    #[test]
    fn refine_noop_when_balanced() {
        let loads = vec![1.0; 8];
        let current = vec![0, 0, 1, 1, 2, 2, 3, 3];
        assert_eq!(refine_assign(&loads, &current, 4, usize::MAX), current);
    }

    #[test]
    fn none_keeps_assignment() {
        let loads = vec![9.0, 1.0];
        let current = vec![1, 0];
        assert_eq!(Balancer::None.rebalance(&loads, &current, 2), current);
    }

    #[test]
    fn single_huge_vp_cannot_be_split() {
        // One VP dominates: no strategy can beat max = that VP's load.
        let loads = vec![100.0, 1.0, 1.0, 1.0];
        let g = greedy_assign(&loads, 4);
        let r = refine_assign(&loads, &[0, 0, 0, 0], 4, usize::MAX);
        for asg in [g, r] {
            let imb = imbalance(&loads, &asg, 4);
            assert!((imb - 100.0 / (103.0 / 4.0)).abs() < 1e-9, "imb {imb}");
        }
    }

    #[test]
    fn imbalance_of_empty_loads_is_one() {
        assert_eq!(imbalance(&[0.0, 0.0], &[0, 1], 2), 1.0);
    }
}
