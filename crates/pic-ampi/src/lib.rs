//! # pic-ampi — Adaptive-MPI-style virtualization
//!
//! The paper's third implementation (§IV-C) runs the unmodified baseline
//! algorithm over-decomposed onto `d · P` **virtual processors** (VPs) and
//! delegates balancing to the runtime: every `F` steps a load balancer
//! migrates VPs between cores, oblivious of the application's spatial
//! locality. This crate reproduces those mechanics:
//!
//! * [`vp`] — the VP grid (an over-decomposed Cartesian decomposition) and
//!   the locality-preserving initial VP→core placement;
//! * [`balancer`] — runtime strategies: [`balancer::Balancer::Refine`]
//!   ("migrates VPs from the most loaded to the least loaded core", the
//!   strategy the paper selected), [`balancer::Balancer::Greedy`] (full
//!   Charm++-GreedyLB-style remap) and `None`;
//! * [`runtime`] — a functional threaded execution: each `pic-comm` rank
//!   plays a core driving its assigned VPs, with VP migration, particle
//!   routing through the VP ownership map, and full verification;
//! * [`model`] — the same mechanics against the analytic load model for
//!   full-scale modeled runs (Figures 5–7), including the runtime's
//!   invocation overhead, migration volume, and the post-migration
//!   fragmentation penalty (interior VP traffic turning remote).

pub mod balancer;
pub mod model;
pub mod runtime;
pub mod vp;

pub use balancer::Balancer;
pub use model::{model_ampi, AmpiParams};
pub use runtime::{run_ampi, run_ampi_adaptive};
pub use vp::VpGrid;
