//! Functional threaded AMPI execution.
//!
//! Each `pic-comm` rank plays one physical core driving its assigned VPs.
//! The VP→core assignment table is replicated: load-balancing decisions are
//! computed from an allgathered VP-load vector by the *same* deterministic
//! strategy on every core, so no broadcast of the decision is needed —
//! exactly like deterministic replicated decision-making in runtime
//! systems. VP migration is a particle hand-off: the receiving core
//! re-derives VP membership from particle positions.
//!
//! The run is fully verified (analytic trajectories + id checksum), which
//! is the point of the PRK: a lost particle in any migration or exchange
//! fails the run.

use crate::model::AmpiParams;
use crate::vp::VpGrid;
use pic_cluster::balancer::{AdaptiveLb, BalanceInput, Layout, LoadBalancer, VpLb};
use pic_comm::collective::{
    allgatherv, allreduce_f64, allreduce_u128, allreduce_u64, decode_u64s, decode_u64s_into,
    encode_u64s,
};
use pic_comm::comm::{Communicator, ReduceOp};
use pic_core::events::{Event, EventKind};
use pic_core::init::build_injection;
use pic_core::motion::advance_all;
use pic_core::particle::Particle;
use pic_core::verify::{verify_all, VerifyReport, DEFAULT_TOLERANCE};
use pic_par::exchange::{route_binned_with, route_particles_with, ExchangeBuffers};
use pic_par::runner::{
    merge_failing_ids, snapshot_loads, trace_interval, ExchangeMode, ParConfig, ParOutcome,
    RankStore,
};
use pic_trace::{Phase, Tracer};

/// Run the AMPI-style implementation on this core. All ranks must call it
/// with identical `cfg` and `params`.
pub fn run_ampi(comm: &Communicator, cfg: &ParConfig, params: &AmpiParams) -> ParOutcome {
    run_ampi_traced(comm, cfg, params, &mut Tracer::disabled())
}

/// [`run_ampi`] with telemetry: per-step phase timing, migration counts,
/// per-rank load snapshots at the agreed sampling interval, and a `"cuts"`
/// record (axis `'v'`) for every VP-reassignment decision — old
/// assignment, the per-VP counts the balancer saw, new assignment.
pub fn run_ampi_traced(
    comm: &Communicator,
    cfg: &ParConfig,
    params: &AmpiParams,
    tracer: &mut Tracer,
) -> ParOutcome {
    assert!(params.interval > 0, "LB interval must be positive");
    let mut lb = VpLb::new(params.interval as u64, params.balancer);
    run_ampi_lb(comm, cfg, params.d, &mut lb, tracer)
}

/// Run the AMPI runtime under the online adaptive balancer: the VP-family
/// escalation ladder (keep → refine → greedy) switched on measured
/// imbalance, every switch recorded as a `"switch"` trace event.
pub fn run_ampi_adaptive(
    comm: &Communicator,
    cfg: &ParConfig,
    d: usize,
    interval: u32,
) -> ParOutcome {
    run_ampi_adaptive_traced(comm, cfg, d, interval, &mut Tracer::disabled())
}

/// [`run_ampi_adaptive`] with telemetry.
pub fn run_ampi_adaptive_traced(
    comm: &Communicator,
    cfg: &ParConfig,
    d: usize,
    interval: u32,
    tracer: &mut Tracer,
) -> ParOutcome {
    assert!(interval > 0, "LB interval must be positive");
    let mut lb = AdaptiveLb::vp_arms(interval as u64);
    run_ampi_lb(comm, cfg, d, &mut lb, tracer)
}

/// The shared AMPI rank loop, generic over the [`LoadBalancer`] driving
/// VP reassignment. The assignment table is replicated, and the balancer
/// decides from the allgathered per-VP load vector — identically on every
/// core — so no decision broadcast is needed.
fn run_ampi_lb(
    comm: &Communicator,
    cfg: &ParConfig,
    d: usize,
    lb: &mut dyn LoadBalancer,
    tracer: &mut Tracer,
) -> ParOutcome {
    let grid = cfg.setup.grid;
    let consts = cfg.setup.consts;
    let cores = comm.size();
    let me = comm.rank();
    let vps = VpGrid::new(grid.ncells(), cores, d);
    let nvps = vps.vp_count();
    let mut assignment = vps.initial_assignment();

    let owner_of = |p: &Particle, vps: &VpGrid, assignment: &[usize]| -> usize {
        let (c, r) = p_cell(&grid, p);
        assignment[vps.vp_of_cell(c, r)]
    };

    // Local population: particles whose VP is initially assigned to me.
    // VP ownership is not column-contiguous, so the binned path bins the
    // whole grid (forces come from the mesh-charge formula — the whole
    // mesh is replicated knowledge, eq. 3).
    let locals: Vec<Particle> = cfg
        .setup
        .particles
        .iter()
        .filter(|p| owner_of(p, &vps, &assignment) == me)
        .copied()
        .collect();
    let mut store = RankStore::build(locals, &grid, cfg.kernel, (0, grid.ncells()));
    let mut bufs = ExchangeBuffers::new();
    bufs.set_wire_format(cfg.kernel.wire);
    // VP routing can target any core, so the declared neighborhood is
    // all-pairs (degree = cores − 1): `Auto` therefore resolves dense —
    // the sparse protocol can never elide a message it has to count.
    if cfg.kernel.exchange.resolve(cores, cores - 1) == ExchangeMode::OverlappedSparse {
        // The escape path never fires under an all-pairs plan, but empty
        // payloads are still elided (sparse wins whenever traffic is, in
        // fact, sparse).
        bufs.enable_sparse(cores, me, 0..cores);
    }

    let mut events = cfg.setup.events.clone();
    events.sort_by_key(|e| e.at_step);
    let mut next_event = 0usize;
    let mut expected_id_sum = cfg.setup.initial_id_sum();
    let mut next_id = cfg.setup.next_id;

    let every = trace_interval(comm, tracer);
    tracer.emit_run_header(
        "ampi",
        cores,
        cfg.setup.particles.len() as u64,
        cfg.steps as u64,
        &store.kernel_desc(),
        lb.name(),
    );
    let mut sent_window = 0u64;
    let mut global_count = cfg.setup.particles.len() as u64;

    for s in 1..=cfg.steps {
        let step_idx = s - 1;
        tracer.begin_step(s as u64);
        // Events due at the start of this step.
        while next_event < events.len() && events[next_event].at_step == step_idx {
            let e: Event = events[next_event];
            next_event += 1;
            match e.kind {
                EventKind::Inject { count, k, m, dir } => {
                    let newcomers = build_injection(
                        grid,
                        consts,
                        e.region,
                        count,
                        k,
                        m,
                        dir,
                        step_idx,
                        &mut next_id,
                    );
                    for p in &newcomers {
                        expected_id_sum += p.id as u128;
                        if owner_of(p, &vps, &assignment) == me {
                            store.push(*p);
                        }
                    }
                }
                EventKind::Remove { count } => {
                    let mut local_ids = store.ids_in_region(&e.region);
                    local_ids.sort_unstable();
                    let gathered = allgatherv(comm, encode_u64s(&local_ids));
                    let mut all: Vec<u64> = gathered.iter().flat_map(|b| decode_u64s(b)).collect();
                    all.sort_unstable();
                    all.truncate(count as usize);
                    let doomed: std::collections::HashSet<u64> = all.iter().copied().collect();
                    for &id in &all {
                        expected_id_sum -= id as u128;
                    }
                    store.remove_ids(&doomed);
                }
            }
        }

        // Advance each VP's particles (one pass — VP membership only
        // matters for routing and accounting).
        tracer.phase_start(Phase::Advance);
        match &mut store {
            RankStore::Aos(particles) => advance_all(&grid, &consts, particles),
            RankStore::Binned(b) => b.sweep_local(&grid, &consts, None),
        }
        tracer.phase_end(Phase::Advance);
        tracer.phase_start(Phase::Exchange);
        let (sent, _received) =
            route_store(comm, me, &grid, &vps, &assignment, &mut store, &mut bufs);
        if let RankStore::Binned(b) = &mut store {
            if b.rebin_due() {
                b.rebin(&grid);
            }
        }
        tracer.phase_end(Phase::Exchange);
        sent_window += sent as u64;

        // Runtime load balancing (never on the final step, matching the
        // historical cadence).
        if lb.wants(s as u64) && s < cfg.steps {
            tracer.phase_start(Phase::Balance);
            sent_window += rebalance(
                comm,
                &vps,
                &mut assignment,
                s as u64,
                lb,
                &mut store,
                &mut bufs,
                me,
                &grid,
                tracer,
            ) as u64;
            tracer.phase_end(Phase::Balance);
        }

        if every > 0 && (s as u64).is_multiple_of(every) {
            let msgs = bufs.take_message_counts();
            global_count = snapshot_loads(comm, tracer, store.len() as u64, sent_window, msgs);
            sent_window = 0;
        }
        tracer.end_step(global_count);
    }

    // Distributed verification.
    let particles = store.to_particles();
    tracer.phase_start(Phase::Verify);
    let local = verify_all(&grid, &particles, cfg.steps, 0, DEFAULT_TOLERANCE);
    let checked = allreduce_u64(comm, local.checked, ReduceOp::Sum);
    let failures = allreduce_u64(comm, local.position_failures, ReduceOp::Sum);
    let max_error = allreduce_f64(comm, local.max_error, ReduceOp::Max);
    let id_sum = allreduce_u128(comm, local.id_sum, ReduceOp::Sum);
    let failing_ids = merge_failing_ids(comm, &local.failing_ids);
    tracer.phase_end(Phase::Verify);
    let local_count = particles.len() as u64;
    let max_count = allreduce_u64(comm, local_count, ReduceOp::Max);
    let total_count = allreduce_u64(comm, local_count, ReduceOp::Sum);
    tracer.set_final_particles(total_count);
    let _ = nvps;
    ParOutcome {
        verify: VerifyReport {
            checked,
            position_failures: failures,
            max_error,
            failing_ids,
            id_sum,
            expected_id_sum,
            tolerance: DEFAULT_TOLERANCE,
        },
        local_count: particles.len(),
        max_count,
        total_count,
        steps: cfg.steps,
        kernel: store.kernel_desc(),
        local_particles: particles,
    }
}

/// Route mis-assigned particles to the core owning their VP, through
/// whichever store the run uses (the binned path drains leavers in place).
fn route_store(
    comm: &Communicator,
    me: usize,
    grid: &pic_core::geometry::Grid,
    vps: &VpGrid,
    assignment: &[usize],
    store: &mut RankStore,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize) {
    match store {
        RankStore::Aos(particles) => route_particles_with(
            comm,
            me,
            |p| {
                let (c, r) = grid.cell_of_point(p.x, p.y);
                assignment[vps.vp_of_cell(c, r)]
            },
            particles,
            bufs,
        ),
        RankStore::Binned(b) => route_binned_with(
            comm,
            me,
            |c, r| assignment[vps.vp_of_cell(c, r)],
            b,
            grid,
            bufs,
        ),
    }
}

#[inline]
fn p_cell(grid: &pic_core::geometry::Grid, p: &Particle) -> (usize, usize) {
    grid.cell_of_point(p.x, p.y)
}

/// One LB round: allgather per-VP loads, let the balancer decide
/// deterministically on every core, migrate the particles of reassigned
/// VPs. Returns the number of particles this core sent during the
/// migration.
#[allow(clippy::too_many_arguments)]
fn rebalance(
    comm: &Communicator,
    vps: &VpGrid,
    assignment: &mut Vec<usize>,
    step: u64,
    lb: &mut dyn LoadBalancer,
    store: &mut RankStore,
    bufs: &mut ExchangeBuffers,
    me: usize,
    grid: &pic_core::geometry::Grid,
    tracer: &mut Tracer,
) -> usize {
    let nvps = vps.vp_count();
    // Local per-VP counts (VPs are 2D tiles, so this is a position scan,
    // not a column-histogram read).
    let mut counts = vec![0u64; nvps];
    match store {
        RankStore::Aos(v) => {
            for p in v.iter() {
                let (c, r) = p_cell(grid, p);
                counts[vps.vp_of_cell(c, r)] += 1;
            }
        }
        RankStore::Binned(b) => {
            let batch = b.batch();
            for i in 0..batch.len() {
                let (c, r) = grid.cell_of_point(batch.x[i], batch.y[i]);
                counts[vps.vp_of_cell(c, r)] += 1;
            }
        }
    }
    // Sum across cores (each VP lives on exactly one core, but the vector
    // sum is the simplest way to assemble the global view).
    let gathered = allgatherv(comm, encode_u64s(&counts));
    tracer.add(pic_trace::Counter::CollectiveBytes, counts.len() as u64 * 8);
    let mut global = vec![0u64; nvps];
    let mut scratch = Vec::with_capacity(nvps);
    for buf in &gathered {
        decode_u64s_into(buf, &mut scratch);
        for (slot, v) in global.iter_mut().zip(&scratch) {
            *slot += v;
        }
    }
    let decision = {
        let layout = Layout {
            ncells: grid.ncells(),
            ranks: comm.size(),
            xcuts: &[],
            ycuts: &[],
            vp_assignment: assignment,
        };
        let input = BalanceInput {
            step,
            col_hist: &[],
            row_counts: &[],
            vp_counts: &global,
        };
        lb.decide(&input, &layout)
    };
    if let Some(sw) = &decision.switched {
        tracer.record_switch(sw.from, sw.to, sw.imbalance);
    }
    if let Some(vp) = decision.vps {
        // The VP-assignment analogue of a cut decision: old table, the
        // per-VP counts the balancer saw, new table.
        tracer.record_cuts('v', assignment, &vp.counts, &vp.assignment);
        *assignment = vp.assignment;
    }
    // Migrate: particles whose VP moved away get routed to the new owner.
    let (sent, _received) = route_store(comm, me, grid, vps, assignment, store, bufs);
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::Balancer;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::events::Region;
    use pic_core::geometry::Grid;
    use pic_core::init::InitConfig;
    use pic_core::verify::triangular_id_sum;

    fn cfg(n: u64, dist: Distribution, steps: u32) -> ParConfig {
        ParConfig::new(
            InitConfig::new(Grid::new(32).unwrap(), n, dist)
                .with_m(1)
                .build()
                .unwrap(),
            steps,
        )
    }

    fn params(d: usize, interval: u32) -> AmpiParams {
        AmpiParams {
            d,
            interval,
            balancer: Balancer::paper_default(),
        }
    }

    #[test]
    fn verified_run_with_migration() {
        let c = cfg(500, Distribution::Geometric { r: 0.85 }, 60);
        let p = params(4, 5);
        let outcomes = run_threads(4, |comm| run_ampi(&comm, &c, &p));
        for o in &outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
            assert_eq!(o.total_count, 500);
            assert_eq!(o.verify.id_sum, triangular_id_sum(500));
        }
    }

    #[test]
    fn migration_reduces_max_count() {
        let c = cfg(2000, Distribution::Geometric { r: 0.8 }, 30);
        let none = run_threads(4, |comm| {
            run_ampi(
                &comm,
                &c,
                &AmpiParams {
                    d: 4,
                    interval: 5,
                    balancer: Balancer::None,
                },
            )
        });
        let refine = run_threads(4, |comm| run_ampi(&comm, &c, &params(4, 5)));
        assert!(none[0].verify.passed());
        assert!(refine[0].verify.passed());
        assert!(
            refine[0].max_count < none[0].max_count,
            "refine {} must beat none {}",
            refine[0].max_count,
            none[0].max_count
        );
    }

    #[test]
    fn greedy_strategy_also_verifies() {
        let c = cfg(600, Distribution::Sinusoidal, 24);
        let p = AmpiParams {
            d: 8,
            interval: 4,
            balancer: Balancer::Greedy,
        };
        let outcomes = run_threads(2, |comm| run_ampi(&comm, &c, &p));
        for o in outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
        }
    }

    #[test]
    fn events_work_under_virtualization() {
        let region = Region {
            x0: 8,
            x1: 24,
            y0: 8,
            y1: 24,
        };
        let mut c = cfg(300, Distribution::Uniform, 40);
        c.setup = c
            .setup
            .with_event(Event::inject(8, region, 80, 0, 1, 1))
            .with_event(Event::remove(25, Region::whole(32), 50));
        let p = params(4, 6);
        let outcomes = run_threads(4, |comm| run_ampi(&comm, &c, &p));
        for o in &outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
            assert_eq!(o.total_count, 330);
        }
    }

    #[test]
    fn single_core_single_vp_trivial() {
        let c = cfg(100, Distribution::Uniform, 10);
        let p = params(1, 3);
        let outcomes = run_threads(1, |comm| run_ampi(&comm, &c, &p));
        assert!(outcomes[0].verify.passed());
        assert_eq!(outcomes[0].local_count, 100);
    }

    #[test]
    fn fast_particles_under_virtualization() {
        let c = ParConfig::new(
            InitConfig::new(Grid::new(32).unwrap(), 200, Distribution::Uniform)
                .with_k(3)
                .with_m(-2)
                .build()
                .unwrap(),
            30,
        );
        let p = params(4, 4);
        let outcomes = run_threads(4, |comm| run_ampi(&comm, &c, &p));
        for o in outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
        }
    }

    #[test]
    fn traced_run_emits_vp_reassignment_cuts() {
        let c = cfg(900, Distribution::Geometric { r: 0.8 }, 20);
        let p = params(4, 5);
        let results = run_threads(4, |comm| {
            let mut tracer = if comm.rank() == 0 {
                Tracer::in_memory(5)
            } else {
                Tracer::disabled()
            };
            let out = run_ampi_traced(&comm, &c, &p, &mut tracer);
            (out, tracer.finish())
        });
        for (out, _) in &results {
            assert!(out.verify.passed(), "{:?}", out.verify);
            assert_eq!(out.total_count, 900);
        }
        let report = results[0].1.as_ref().expect("rank 0 tracer enabled");
        // LB fires at steps 5, 10, 15 (never on the final step).
        assert_eq!(report.cuts.len(), 3);
        for cut in &report.cuts {
            assert_eq!(cut.axis, 'v');
            assert_eq!(cut.old.len(), 16, "one slot per VP (d * cores)");
            assert_eq!(cut.new.len(), 16);
            assert_eq!(cut.counts.iter().sum::<u64>(), 900);
            assert!(cut.new.iter().all(|&core| core < 4));
        }
        assert_eq!(report.summary.final_particles, 900);
        assert!(report.summary.max_imbalance.is_finite());
        // Skewed start under greedy VP placement must register migrations.
        let rehomed: u64 = report.steps.iter().map(|s| s.counters[0]).sum();
        assert!(rehomed > 0, "migration counter never moved");
    }

    #[test]
    fn adaptive_vp_run_verifies_and_switches() {
        // Geometric skew under the keep-everything arm sustains a high
        // per-core imbalance, so the adaptive ladder must escalate from
        // vp-none to vp-refine once its window fills.
        let c = cfg(1200, Distribution::Geometric { r: 0.85 }, 40);
        let results = run_threads(4, |comm| {
            let mut tracer = if comm.rank() == 0 {
                Tracer::in_memory(2)
            } else {
                Tracer::disabled()
            };
            let out = run_ampi_adaptive_traced(&comm, &c, 4, 4, &mut tracer);
            (out, tracer.finish())
        });
        for (out, _) in &results {
            assert!(out.verify.passed(), "{:?}", out.verify);
            assert_eq!(out.total_count, 1200);
        }
        let report = results[0].1.as_ref().expect("rank 0 traced");
        assert_eq!(report.summary.balancer, "adaptive");
        assert!(
            !report.switches.is_empty(),
            "sustained skew must escalate off the vp-none arm"
        );
        assert_eq!(report.switches[0].from, "vp-none");
        assert_eq!(report.switches[0].to, "vp-refine");
    }

    #[test]
    fn traced_run_matches_untraced() {
        let c = cfg(400, Distribution::PAPER_SKEW, 24);
        let p = params(2, 6);
        let plain = run_threads(4, |comm| run_ampi(&comm, &c, &p));
        let traced = run_threads(4, |comm| {
            let mut tracer = Tracer::in_memory(2);
            run_ampi_traced(&comm, &c, &p, &mut tracer)
        });
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.verify.id_sum, b.verify.id_sum);
            assert_eq!(a.total_count, b.total_count);
            assert_eq!(a.local_count, b.local_count);
            assert!(b.verify.passed(), "{:?}", b.verify);
        }
    }
}
