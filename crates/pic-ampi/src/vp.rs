//! The virtual-processor grid.
//!
//! Over-decomposition follows the AMPI recipe: the domain is split into
//! `d · P` subdomains exactly as if there were `d · P` MPI ranks, and each
//! physical core initially receives a compact `a × b` block of VPs
//! (`a · b = d`), so the starting placement is locality-preserving — the
//! paper's assumption before the load balancer starts scattering VPs.

use pic_par::decomp::{factor_2d, Decomp2d};

/// The VP-level decomposition plus the core-grid geometry.
#[derive(Debug, Clone)]
pub struct VpGrid {
    /// VP-level Cartesian decomposition of the mesh (`vpx × vpy` blocks).
    pub decomp: Decomp2d,
    /// Physical core grid.
    pub px: usize,
    pub py: usize,
    /// VPs per core in x / y (`a · b = d`).
    pub a: usize,
    pub b: usize,
}

impl VpGrid {
    /// Build the VP grid for `cores` cores and over-decomposition `d`.
    /// The VP grid dims are `(px·a, py·b)` with `(a, b) = factor_2d(d)`,
    /// so the initial block placement is exact.
    pub fn new(ncells: usize, cores: usize, d: usize) -> VpGrid {
        assert!(d >= 1, "over-decomposition degree must be ≥ 1");
        let (px, py) = factor_2d(cores);
        let (a, b) = factor_2d(d);
        let decomp = Decomp2d::uniform_grid(ncells, px * a, py * b);
        VpGrid {
            decomp,
            px,
            py,
            a,
            b,
        }
    }

    /// Total VP count (`d · P`).
    #[inline]
    pub fn vp_count(&self) -> usize {
        self.decomp.ranks()
    }

    /// Number of physical cores.
    #[inline]
    pub fn cores(&self) -> usize {
        self.px * self.py
    }

    /// Initial locality-preserving VP→core assignment: VP `(vx, vy)` goes
    /// to core `(vx / a, vy / b)`.
    pub fn initial_assignment(&self) -> Vec<usize> {
        (0..self.vp_count())
            .map(|vp| {
                let (vx, vy) = self.decomp.coords_of(vp);
                let cx = vx / self.a;
                let cy = vy / self.b;
                cy * self.px + cx
            })
            .collect()
    }

    /// VP owning cell `(col, row)`.
    #[inline]
    pub fn vp_of_cell(&self, col: usize, row: usize) -> usize {
        self.decomp.owner_of_cell(col, row)
    }

    /// Cells in one VP's subgrid.
    pub fn vp_cells(&self, vp: usize) -> usize {
        self.decomp.cell_count(vp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_grid_dims_multiply_core_grid() {
        let g = VpGrid::new(192, 24, 4); // cores 24 → (6,4); d 4 → (2,2)
        assert_eq!((g.px, g.py), (6, 4));
        assert_eq!((g.a, g.b), (2, 2));
        assert_eq!(g.decomp.px, 12);
        assert_eq!(g.decomp.py, 8);
        assert_eq!(g.vp_count(), 96);
        assert_eq!(g.cores(), 24);
    }

    #[test]
    fn initial_assignment_is_balanced_and_compact() {
        let g = VpGrid::new(96, 6, 8); // (3,2) cores × (4,2) vps-per-core
        let asg = g.initial_assignment();
        let mut per_core = vec![0usize; 6];
        for &c in &asg {
            per_core[c] += 1;
        }
        assert!(per_core.iter().all(|&n| n == 8), "{per_core:?}");
        // Compactness: the VPs of core 0 form a contiguous block.
        let mine: Vec<usize> = (0..g.vp_count()).filter(|&v| asg[v] == 0).collect();
        for &vp in &mine {
            let (vx, vy) = g.decomp.coords_of(vp);
            assert!(vx < g.a && vy < g.b);
        }
    }

    #[test]
    fn d_one_degenerates_to_plain_decomposition() {
        let g = VpGrid::new(64, 8, 1);
        assert_eq!(g.vp_count(), 8);
        let asg = g.initial_assignment();
        assert_eq!(asg, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn vp_ownership_covers_grid() {
        let g = VpGrid::new(32, 4, 4);
        let mut counts = vec![0usize; g.vp_count()];
        for col in 0..32 {
            for row in 0..32 {
                counts[g.vp_of_cell(col, row)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 32 * 32);
        assert!(counts.iter().all(|&c| c > 0));
        for vp in 0..g.vp_count() {
            assert_eq!(counts[vp], g.vp_cells(vp));
        }
    }
}
