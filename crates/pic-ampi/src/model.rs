//! Modeled AMPI execution for the full-scale experiments.
//!
//! Per step, every VP's load is an O(1) query against the analytic load
//! model; per-core compute adds the VP scheduling overhead; per-VP neighbor
//! exchange is charged at the distance between the owning cores — so after
//! the balancer scatters VPs, formerly-interior traffic is charged at
//! remote rates, reproducing the fragmentation effect the paper describes.
//! Each LB invocation is charged the runtime's fixed cost (instrumentation
//! gather + centralized strategy) plus the migration volume.

use crate::balancer::Balancer;
use crate::vp::VpGrid;
use pic_cluster::bsp::BspSimulator;
use pic_cluster::loadmodel::ColumnLoadModel;
use pic_par::model_impl::{ModelConfig, ModelOutcome};

/// AMPI runtime parameters: the two knobs of the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmpiParams {
    /// Over-decomposition degree `d` (VPs per core).
    pub d: usize,
    /// Steps between load-balancer invocations (`F`).
    pub interval: u32,
    /// Strategy.
    pub balancer: Balancer,
}

impl AmpiParams {
    /// Figure 5's fixed points: `d = 4` for the F sweep, `F = 1000` for
    /// the d sweep.
    pub fn paper_default() -> AmpiParams {
        AmpiParams {
            d: 4,
            interval: 160,
            balancer: Balancer::paper_default(),
        }
    }
}

/// Modeled AMPI run.
pub fn model_ampi(cfg: &ModelConfig, params: &AmpiParams) -> ModelOutcome {
    assert!(params.interval > 0);
    let grid = VpGrid::new(cfg.ncells, cfg.cores, params.d);
    let nvps = grid.vp_count();
    let mut assignment = grid.initial_assignment();
    let mut load = ColumnLoadModel::new(cfg.dist, cfg.ncells, cfg.n, cfg.k, cfg.dir);
    let mut bsp = BspSimulator::new(cfg.machine, cfg.cost, cfg.cores);

    // Cached per-VP geometry.
    let vp_bounds: Vec<((usize, usize), (usize, usize))> =
        (0..nvps).map(|vp| grid.decomp.bounds(vp)).collect();
    let vp_cells: Vec<f64> = (0..nvps).map(|vp| grid.vp_cells(vp) as f64).collect();
    // Downstream x-neighbor of each VP (same VP row).
    let vpx = grid.decomp.px;
    let rightward = cfg.dir >= 0;
    let x_neighbor: Vec<usize> = (0..nvps)
        .map(|vp| {
            let (vx, vy) = grid.decomp.coords_of(vp);
            let nx = if rightward {
                (vx + 1) % vpx
            } else {
                (vx + vpx - 1) % vpx
            };
            grid.decomp.rank_of(nx, vy)
        })
        .collect();

    let mut vp_loads = vec![0.0f64; nvps];
    let mut compute = vec![0.0f64; cfg.cores];
    let mut comm = vec![0.0f64; cfg.cores];

    for s in 1..=cfg.steps {
        compute.iter_mut().for_each(|v| *v = 0.0);
        comm.iter_mut().for_each(|v| *v = 0.0);
        for vp in 0..nvps {
            let (cols, rows) = vp_bounds[vp];
            let count = load.count_in_rect(cols, rows);
            let core = assignment[vp];
            // Measured VP load includes the core's speed perturbation —
            // runtime balancers instrument wall time, so (unlike the
            // count-based diffusion scheme) they see and compensate for
            // system non-uniformity.
            vp_loads[vp] = count * cfg.cost.particle_ns * cfg.noise.factor(core, s);
            compute[core] += vp_loads[vp] + cfg.cost.vp_sched_ns;
            // Neighbor exchange: leavers cross the VP's downstream cut.
            let cut = if rightward {
                grid.decomp.xcuts[grid.decomp.coords_of(vp).0 + 1] % cfg.ncells
            } else {
                grid.decomp.xcuts[grid.decomp.coords_of(vp).0]
            };
            let frac = if load.total() == 0 {
                0.0
            } else {
                load.count_in_rect((0, cfg.ncells), rows) / load.total() as f64
            };
            let sent = load.crossing_cut(cut) as f64 * frac;
            let dest_core = assignment[x_neighbor[vp]];
            let dist = cfg.machine.distance(core, dest_core);
            // Transport plus the virtualized runtime's per-message
            // scheduling overhead (every VP message is routed through the
            // scheduler even between co-located VPs).
            let ns = cfg.cost.particle_msg_ns(dist, sent) + cfg.cost.ampi_msg_overhead_ns;
            comm[core] += ns;
            comm[dest_core] += ns;
        }
        bsp.step(&compute, &comm);
        load.advance(1);

        if s % params.interval as u64 == 0 && s < cfg.steps {
            let new_assignment = params.balancer.rebalance(&vp_loads, &assignment, cfg.cores);
            // Migration: per-core send+receive volume; the phase ends when
            // the busiest core finishes.
            let mut per_core_ns = vec![0.0f64; cfg.cores];
            let mut bytes = 0.0f64;
            for vp in 0..nvps {
                let (from, to) = (assignment[vp], new_assignment[vp]);
                if from == to {
                    continue;
                }
                let (cols, rows) = vp_bounds[vp];
                let parts = load.count_in_rect(cols, rows);
                let dist = cfg.machine.distance(from, to);
                let ns = cfg.cost.migration_ns(dist, vp_cells[vp], parts);
                per_core_ns[from] += ns;
                per_core_ns[to] += ns;
                bytes += vp_cells[vp] * cfg.cost.cell_bytes + parts * cfg.cost.particle_bytes;
            }
            let max_migration = per_core_ns.iter().cloned().fold(0.0f64, f64::max);
            let lb_ns = cfg.cost.ampi_lb_invocation_ns(cfg.cores, nvps) + max_migration;
            bsp.lb_phase(lb_ns, bytes);
            assignment = new_assignment;
        }
    }

    // End-state max particles per core.
    let mut per_core_particles = vec![0.0f64; cfg.cores];
    for vp in 0..nvps {
        let (cols, rows) = vp_bounds[vp];
        per_core_particles[assignment[vp]] += load.count_in_rect(cols, rows);
    }
    let max_particles_end = per_core_particles.iter().cloned().fold(0.0f64, f64::max);

    // Fragmentation: how many VP neighbor channels now cross nodes.
    let mut remote_pairs = 0usize;
    for vp in 0..nvps {
        let a = assignment[vp];
        let b = assignment[x_neighbor[vp]];
        if cfg.machine.distance(a, b) == pic_cluster::machine::Distance::Remote {
            remote_pairs += 1;
        }
    }

    let stats = bsp.stats();
    ModelOutcome {
        stats,
        seconds: stats.seconds,
        max_particles_end,
        ideal_particles: cfg.n as f64 / cfg.cores as f64,
        remote_neighbor_frac: remote_pairs as f64 / nvps as f64,
    }
}

/// Sweep `d` and `F` jointly and keep the best, mirroring the paper's
/// per-point tuning.
pub fn model_ampi_tuned(cfg: &ModelConfig) -> (ModelOutcome, AmpiParams) {
    let mut best: Option<(ModelOutcome, AmpiParams)> = None;
    // Interval candidates scale with the run length (the paper's
    // best-performing F ≈ 160–1,000 for 6,000-step runs).
    let steps = cfg.steps;
    let mut intervals: Vec<u32> = [steps / 40, steps / 10, steps / 6]
        .iter()
        .map(|&i| (i.max(1)) as u32)
        .collect();
    intervals.dedup();
    for &d in &[4usize, 16] {
        for &interval in &intervals {
            let params = AmpiParams {
                d,
                interval,
                balancer: Balancer::paper_default(),
            };
            let out = model_ampi(cfg, &params);
            if best.as_ref().is_none_or(|(b, _)| out.seconds < b.seconds) {
                best = Some((out, params));
            }
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_cluster::cost::CostModel;
    use pic_cluster::machine::MachineModel;
    use pic_core::dist::Distribution;
    use pic_par::model_impl::model_baseline;

    // Large enough that compute dominates the (paper-scale-calibrated)
    // fixed LB invocation cost, as in the real experiments.
    fn small_cfg(cores: usize) -> ModelConfig {
        ModelConfig {
            ncells: 256,
            n: 2_560_000,
            steps: 400,
            dist: Distribution::Geometric { r: 0.98 },
            k: 0,
            dir: 1,
            cores,
            machine: MachineModel::edison(cores),
            cost: CostModel::edison_like(),
            noise: pic_cluster::noise::NoiseModel::None,
        }
    }

    #[test]
    fn ampi_beats_baseline_on_skew() {
        let cfg = small_cfg(16);
        let base = model_baseline(&cfg);
        let params = AmpiParams {
            d: 8,
            interval: 40,
            balancer: Balancer::paper_default(),
        };
        let ampi = model_ampi(&cfg, &params);
        assert!(
            ampi.seconds < base.seconds,
            "ampi {:.3}s must beat baseline {:.3}s",
            ampi.seconds,
            base.seconds
        );
        assert!(ampi.max_particles_end < base.max_particles_end);
    }

    #[test]
    fn no_balancer_is_baseline_plus_overhead() {
        let cfg = small_cfg(8);
        let base = model_baseline(&cfg);
        let params = AmpiParams {
            d: 4,
            interval: 100,
            balancer: Balancer::None,
        };
        let ampi = model_ampi(&cfg, &params);
        // Over-decomposition without balancing only adds overhead.
        assert!(ampi.seconds >= base.seconds * 0.95);
        assert!((ampi.stats.imbalance - base.stats.imbalance).abs() < 0.5);
    }

    #[test]
    fn too_frequent_lb_hurts() {
        // The Figure 5 effect: F too small → invocation overhead dominates.
        let cfg = small_cfg(16);
        let mk = |interval| {
            model_ampi(
                &cfg,
                &AmpiParams {
                    d: 4,
                    interval,
                    balancer: Balancer::paper_default(),
                },
            )
            .seconds
        };
        let frequent = mk(2);
        let moderate = mk(80);
        assert!(
            frequent > moderate,
            "F=2 ({frequent:.3}s) must be slower than F=80 ({moderate:.3}s)"
        );
    }

    #[test]
    fn over_decomposition_improves_balance() {
        // The other Figure 5 effect: d = 1 gives the balancer nothing to
        // move; larger d improves balance.
        let cfg = small_cfg(16);
        let mk = |d| {
            model_ampi(
                &cfg,
                &AmpiParams {
                    d,
                    interval: 50,
                    balancer: Balancer::paper_default(),
                },
            )
        };
        let d1 = mk(1);
        let d8 = mk(8);
        assert!(
            d8.stats.imbalance < d1.stats.imbalance,
            "d=8 imbalance {} must beat d=1 {}",
            d8.stats.imbalance,
            d1.stats.imbalance
        );
        assert!(d8.seconds < d1.seconds);
    }

    #[test]
    fn d_one_refine_swaps_cannot_balance() {
        let cfg = small_cfg(8);
        let params = AmpiParams {
            d: 1,
            interval: 50,
            balancer: Balancer::paper_default(),
        };
        let out = model_ampi(&cfg, &params);
        assert!(
            out.stats.imbalance > 1.3,
            "imbalance {}",
            out.stats.imbalance
        );
    }

    #[test]
    fn runtime_lb_compensates_for_slow_cores() {
        // Category-1 imbalance (paper §I): a straggler socket. The
        // particle distribution is uniform, so the count-based diffusion
        // scheme sees nothing to fix — but the runtime balancer measures
        // wall time and shifts VPs off the slow cores.
        use pic_cluster::noise::NoiseModel;
        use pic_par::diffusion::DiffusionParams;
        use pic_par::model_impl::{model_baseline, model_diffusion};
        let mut cfg = small_cfg(16);
        cfg.dist = pic_core::dist::Distribution::Uniform;
        cfg.noise = NoiseModel::slow_tail(16, 4, 2.0);
        let base = model_baseline(&cfg);
        let diff = model_diffusion(
            &cfg,
            DiffusionParams {
                interval: 10,
                tau: 0,
                border_w: 4,
            },
        );
        let ampi = model_ampi(
            &cfg,
            &AmpiParams {
                d: 8,
                interval: 40,
                balancer: Balancer::paper_default(),
            },
        );
        // Baseline suffers the full 2× straggler penalty.
        assert!(
            base.stats.imbalance > 1.5,
            "baseline imbalance {}",
            base.stats.imbalance
        );
        // Count-based diffusion cannot help (counts are already equal).
        assert!(
            diff.seconds > 0.9 * base.seconds,
            "diffusion should not help: {} vs {}",
            diff.seconds,
            base.seconds
        );
        // The runtime balancer does.
        assert!(
            ampi.seconds < 0.8 * base.seconds,
            "runtime LB must compensate: {} vs {}",
            ampi.seconds,
            base.seconds
        );
    }

    #[test]
    fn locality_oblivious_migration_fragments_neighborhoods() {
        // The paper's §V-B locality argument, quantified: the compact
        // initial placement keeps most VP neighbor channels on-node; after
        // locality-oblivious balancing rounds many cross node boundaries.
        let cfg = small_cfg(48); // 2 nodes on the Edison layout
        let before = model_ampi(
            &cfg,
            &AmpiParams {
                d: 8,
                interval: 40,
                balancer: Balancer::None,
            },
        );
        let after = model_ampi(
            &cfg,
            &AmpiParams {
                d: 8,
                interval: 40,
                balancer: Balancer::Greedy,
            },
        );
        assert!(
            before.remote_neighbor_frac < 0.2,
            "compact placement should be mostly local: {}",
            before.remote_neighbor_frac
        );
        assert!(
            after.remote_neighbor_frac > 2.0 * before.remote_neighbor_frac,
            "greedy scattering must fragment: {} vs {}",
            after.remote_neighbor_frac,
            before.remote_neighbor_frac
        );
    }

    #[test]
    fn greedy_and_refine_both_balance() {
        let cfg = small_cfg(8);
        let refine = model_ampi(
            &cfg,
            &AmpiParams {
                d: 8,
                interval: 40,
                balancer: Balancer::paper_default(),
            },
        );
        let greedy = model_ampi(
            &cfg,
            &AmpiParams {
                d: 8,
                interval: 40,
                balancer: Balancer::Greedy,
            },
        );
        assert!(refine.stats.imbalance < 1.6);
        assert!(greedy.stats.imbalance < 1.6);
        // Both strategies actually move data.
        assert!(greedy.stats.migrated_bytes > 0.0);
        assert!(refine.stats.migrated_bytes > 0.0);
    }
}
