//! Rank-path equivalence for the AMPI-style runtime (DESIGN.md §13):
//! the full-grid binned store the VP scheduler advances must be
//! physics-identical to the AoS reference loop, whatever the balancer
//! does to VP placement. Exact tier ⇒ bit-identical; fast tier ⇒ within
//! the derived analytic drift bound. Also passes under `PIC_NO_SIMD=1`.

use pic_ampi::balancer::Balancer;
use pic_ampi::model::AmpiParams;
use pic_ampi::runtime::run_ampi;
use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::engine::SweepMode;
use pic_core::events::{Event, Region};
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::verify::analytic_tolerance;
use pic_par::runner::{ExchangeMode, ParConfig, ParOutcome, RankKernel, WireFormat};

const STEPS: u32 = 30;

fn cfg(kernel: RankKernel) -> ParConfig {
    let setup = InitConfig::new(
        Grid::new(32).unwrap(),
        600,
        Distribution::Geometric { r: 0.9 },
    )
    .with_k(1)
    .with_m(1)
    .build()
    .unwrap()
    .with_event(Event::inject(
        7,
        Region {
            x0: 2,
            x1: 12,
            y0: 2,
            y1: 12,
        },
        40,
        0,
        1,
        1,
    ))
    .with_event(Event::remove(15, Region::whole(32), 25));
    ParConfig::new(setup, STEPS).with_kernel(kernel)
}

fn run(kernel: RankKernel, ranks: usize, balancer: Balancer) -> Vec<ParOutcome> {
    let cfg = cfg(kernel);
    run_threads(ranks, |comm| {
        let o = run_ampi(
            &comm,
            &cfg,
            &AmpiParams {
                d: 4,
                interval: 6,
                balancer,
            },
        );
        assert!(o.verify.passed(), "{balancer:?}: {:?}", o.verify);
        o
    })
}

fn bit_finals(outcomes: &[ParOutcome]) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut v: Vec<_> = outcomes
        .iter()
        .flat_map(|o| o.local_particles.iter())
        .map(|p| {
            (
                p.id,
                p.x.to_bits(),
                p.y.to_bits(),
                p.vx.to_bits(),
                p.vy.to_bits(),
            )
        })
        .collect();
    v.sort_by_key(|t| t.0);
    v
}

#[test]
fn ampi_binned_exact_bitwise_matches_aos() {
    // The AoS reference runs the dense synchronous exchange (the oracle);
    // the binned kernel must match it bit for bit under both that oracle
    // and the sparse VP routing (all-pairs plan — empty payloads elided).
    for ranks in [1usize, 2, 4] {
        let aos_kernel = RankKernel::aos().with_exchange(ExchangeMode::DenseSync);
        let aos = bit_finals(&run(aos_kernel, ranks, Balancer::paper_default()));
        for rebin in [1u32, 3, 16] {
            for exchange in [ExchangeMode::DenseSync, ExchangeMode::OverlappedSparse] {
                let kernel = RankKernel::default()
                    .with_rebin_interval(rebin)
                    .with_exchange(exchange);
                let got = bit_finals(&run(kernel, ranks, Balancer::paper_default()));
                assert_eq!(aos, got, "{ranks} ranks, rebin {rebin}, {exchange:?}");
            }
        }
    }
}

#[test]
fn ampi_typed_wire_bitwise_matches_byte_oracle() {
    // DESIGN.md §15: the zero-copy typed particle wire is physics-
    // invisible under VP routing too — every migration wave must land on
    // the same bits whether the buckets cross the fabric as owned
    // `Vec<Particle>`s or as the 76-byte serialized oracle records, in
    // both exchange modes (sparse here runs the all-pairs plan).
    for ranks in [1usize, 2, 4] {
        for exchange in [ExchangeMode::DenseSync, ExchangeMode::OverlappedSparse] {
            let base = RankKernel::default().with_exchange(exchange);
            let bytes = bit_finals(&run(
                base.with_wire(WireFormat::Bytes),
                ranks,
                Balancer::paper_default(),
            ));
            let typed = bit_finals(&run(
                base.with_wire(WireFormat::Typed),
                ranks,
                Balancer::paper_default(),
            ));
            assert_eq!(bytes, typed, "{ranks} ranks, {exchange:?}");
        }
    }
}

#[test]
fn ampi_binned_exact_bitwise_matches_aos_across_balancers() {
    for balancer in [Balancer::Greedy, Balancer::None] {
        let aos = bit_finals(&run(RankKernel::aos(), 4, balancer));
        let got = bit_finals(&run(RankKernel::default(), 4, balancer));
        assert_eq!(aos, got, "{balancer:?}");
    }
}

#[test]
fn ampi_fast_tier_drift_within_analytic_tolerance() {
    // k=1, m=1 ⇒ max stride 3, matching the serial engine's
    // `verify_analytic` stride formula.
    let tol = analytic_tolerance(STEPS as u64, 3);
    let aos = bit_finals(&run(RankKernel::aos(), 4, Balancer::paper_default()));
    let kernel = RankKernel::from_sweep(SweepMode::SoaBinnedFast);
    let fast = bit_finals(&run(kernel, 4, Balancer::paper_default()));
    assert_eq!(fast.len(), aos.len(), "population diverged");
    for (a, f) in aos.iter().zip(&fast) {
        assert_eq!(a.0, f.0, "id sets diverged");
        let dx = (f64::from_bits(a.1) - f64::from_bits(f.1)).abs();
        let dy = (f64::from_bits(a.2) - f64::from_bits(f.2)).abs();
        assert!(
            dx <= tol && dy <= tol,
            "id {}: fast-tier drift ({dx:e}, {dy:e}) exceeds {tol:e}",
            a.0
        );
    }
}
