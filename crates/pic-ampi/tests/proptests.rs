//! Property tests of the VP grid and the balancing strategies.

use pic_ampi::balancer::{greedy_assign, imbalance, refine_assign, Balancer};
use pic_ampi::vp::VpGrid;
use proptest::prelude::*;

fn arb_loads() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1000.0, 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Greedy always produces a valid assignment and never does worse than
    /// `max_vp_load / avg` allows: its max core load is at most
    /// `avg + max_vp` (classic LPT-style bound, loose form).
    #[test]
    fn greedy_bound(loads in arb_loads(), cores in 1usize..12) {
        let asg = greedy_assign(&loads, cores);
        prop_assert_eq!(asg.len(), loads.len());
        prop_assert!(asg.iter().all(|&c| c < cores));
        let total: f64 = loads.iter().sum();
        let maxvp = loads.iter().cloned().fold(0.0f64, f64::max);
        let mut core_loads = vec![0.0f64; cores];
        for (vp, &c) in asg.iter().enumerate() {
            core_loads[c] += loads[vp];
        }
        let maxcore = core_loads.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(
            maxcore <= total / cores as f64 + maxvp + 1e-9,
            "greedy max {maxcore} vs bound {}",
            total / cores as f64 + maxvp
        );
    }

    /// Refine never increases the imbalance, preserves the VP set, and
    /// yields a valid assignment.
    #[test]
    fn refine_never_worse(
        loads in arb_loads(),
        cores in 1usize..12,
        seed in any::<u64>(),
        max_moves in 0usize..100,
    ) {
        let current: Vec<usize> = (0..loads.len())
            .map(|v| ((seed >> (v % 48)) % cores as u64) as usize)
            .collect();
        let before = imbalance(&loads, &current, cores);
        let asg = refine_assign(&loads, &current, cores, max_moves);
        prop_assert_eq!(asg.len(), loads.len());
        prop_assert!(asg.iter().all(|&c| c < cores));
        let after = imbalance(&loads, &asg, cores);
        prop_assert!(after <= before + 1e-9, "refine worsened {before} → {after}");
    }

    /// Refine with zero budget is the identity.
    #[test]
    fn refine_zero_budget_identity(loads in arb_loads(), cores in 1usize..8) {
        let current: Vec<usize> = (0..loads.len()).map(|v| v % cores).collect();
        prop_assert_eq!(refine_assign(&loads, &current, cores, 0), current);
    }

    /// Balancer::rebalance is deterministic.
    #[test]
    fn strategies_deterministic(loads in arb_loads(), cores in 1usize..8) {
        let current: Vec<usize> = (0..loads.len()).map(|v| v % cores).collect();
        for b in [Balancer::None, Balancer::Greedy, Balancer::Refine { max_moves: 16 }] {
            let a1 = b.rebalance(&loads, &current, cores);
            let a2 = b.rebalance(&loads, &current, cores);
            prop_assert_eq!(a1, a2);
        }
    }

    /// The VP grid always covers the mesh exactly, and the initial
    /// assignment puts the same number of VPs on every core.
    #[test]
    fn vp_grid_cover_and_balance(
        cores in 1usize..25,
        d in 1usize..17,
        ncells_mult in 1usize..4,
    ) {
        // Grid must be even and at least as wide as the VP grid.
        let g_probe = VpGrid::new(1 << 12, cores, d); // probe dims
        let need = g_probe.decomp.px.max(g_probe.decomp.py);
        let ncells = ((need * ncells_mult).max(need) + 1) / 2 * 2;
        let g = VpGrid::new(ncells, cores, d);
        prop_assert_eq!(g.vp_count(), cores * d);
        let asg = g.initial_assignment();
        let mut per_core = vec![0usize; cores];
        for &c in &asg {
            prop_assert!(c < cores);
            per_core[c] += 1;
        }
        prop_assert!(per_core.iter().all(|&n| n == d), "{per_core:?}");
        // Coverage.
        let total: usize = (0..g.vp_count()).map(|vp| g.vp_cells(vp)).sum();
        prop_assert_eq!(total, ncells * ncells);
    }
}
