//! Trait-conformance suite for the AMPI runtime: the VP balancing
//! strategies behind the [`LoadBalancer`] trait must reproduce the
//! pre-refactor run loop **bit-identically**.
//!
//! The `oracle` module is a frozen copy of `run_ampi_traced` exactly as it
//! existed before the balancer unification: the VP-count scan, the
//! allgather, the in-place `Balancer::rebalance` call, and the migration
//! routing. Each case runs the same configuration through the oracle and
//! the trait-driven runtime on every rank and demands equality of the
//! final particle sets, the id checksum, every `'v'` reassignment record,
//! and the deterministic per-step trace fields.

use pic_ampi::balancer::Balancer;
use pic_ampi::model::AmpiParams;
use pic_ampi::runtime::run_ampi_traced;
use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_par::runner::{ParConfig, ParOutcome};
use pic_trace::{Counter, TraceReport, Tracer};

/// Pre-refactor AMPI run loop, copied verbatim from the last commit before
/// the `LoadBalancer` trait existed. The only mechanical adaptation is the
/// run header's added `balancer` argument (the header string is not part
/// of the comparison; the structured records are).
mod oracle {
    use pic_ampi::balancer::Balancer;
    use pic_ampi::model::AmpiParams;
    use pic_ampi::vp::VpGrid;
    use pic_comm::collective::{
        allgatherv, allreduce_f64, allreduce_u128, allreduce_u64, decode_u64s, decode_u64s_into,
        encode_u64s,
    };
    use pic_comm::comm::{Communicator, ReduceOp};
    use pic_core::events::{Event, EventKind};
    use pic_core::init::build_injection;
    use pic_core::motion::advance_all;
    use pic_core::particle::Particle;
    use pic_core::verify::{verify_all, VerifyReport, DEFAULT_TOLERANCE};
    use pic_par::exchange::{route_binned_with, route_particles_with, ExchangeBuffers};
    use pic_par::runner::{
        merge_failing_ids, snapshot_loads, trace_interval, ExchangeMode, ParConfig, ParOutcome,
        RankStore,
    };
    use pic_trace::{Phase, Tracer};

    pub fn run_ampi_traced(
        comm: &Communicator,
        cfg: &ParConfig,
        params: &AmpiParams,
        tracer: &mut Tracer,
    ) -> ParOutcome {
        assert!(params.interval > 0, "LB interval must be positive");
        let grid = cfg.setup.grid;
        let consts = cfg.setup.consts;
        let cores = comm.size();
        let me = comm.rank();
        let vps = VpGrid::new(grid.ncells(), cores, params.d);
        let nvps = vps.vp_count();
        let mut assignment = vps.initial_assignment();

        let owner_of = |p: &Particle, vps: &VpGrid, assignment: &[usize]| -> usize {
            let (c, r) = p_cell(&grid, p);
            assignment[vps.vp_of_cell(c, r)]
        };

        let locals: Vec<Particle> = cfg
            .setup
            .particles
            .iter()
            .filter(|p| owner_of(p, &vps, &assignment) == me)
            .copied()
            .collect();
        let mut store = RankStore::build(locals, &grid, cfg.kernel, (0, grid.ncells()));
        let mut bufs = ExchangeBuffers::new();
        bufs.set_wire_format(cfg.kernel.wire);
        if cfg.kernel.exchange.resolve(cores, cores - 1) == ExchangeMode::OverlappedSparse {
            bufs.enable_sparse(cores, me, 0..cores);
        }

        let mut events = cfg.setup.events.clone();
        events.sort_by_key(|e| e.at_step);
        let mut next_event = 0usize;
        let mut expected_id_sum = cfg.setup.initial_id_sum();
        let mut next_id = cfg.setup.next_id;

        let every = trace_interval(comm, tracer);
        tracer.emit_run_header(
            "ampi",
            cores,
            cfg.setup.particles.len() as u64,
            cfg.steps as u64,
            &store.kernel_desc(),
            "oracle",
        );
        let mut sent_window = 0u64;
        let mut global_count = cfg.setup.particles.len() as u64;

        for s in 1..=cfg.steps {
            let step_idx = s - 1;
            tracer.begin_step(s as u64);
            while next_event < events.len() && events[next_event].at_step == step_idx {
                let e: Event = events[next_event];
                next_event += 1;
                match e.kind {
                    EventKind::Inject { count, k, m, dir } => {
                        let newcomers = build_injection(
                            grid,
                            consts,
                            e.region,
                            count,
                            k,
                            m,
                            dir,
                            step_idx,
                            &mut next_id,
                        );
                        for p in &newcomers {
                            expected_id_sum += p.id as u128;
                            if owner_of(p, &vps, &assignment) == me {
                                store.push(*p);
                            }
                        }
                    }
                    EventKind::Remove { count } => {
                        let mut local_ids = store.ids_in_region(&e.region);
                        local_ids.sort_unstable();
                        let gathered = allgatherv(comm, encode_u64s(&local_ids));
                        let mut all: Vec<u64> =
                            gathered.iter().flat_map(|b| decode_u64s(b)).collect();
                        all.sort_unstable();
                        all.truncate(count as usize);
                        let doomed: std::collections::HashSet<u64> = all.iter().copied().collect();
                        for &id in &all {
                            expected_id_sum -= id as u128;
                        }
                        store.remove_ids(&doomed);
                    }
                }
            }

            tracer.phase_start(Phase::Advance);
            match &mut store {
                RankStore::Aos(particles) => advance_all(&grid, &consts, particles),
                RankStore::Binned(b) => b.sweep_local(&grid, &consts, None),
            }
            tracer.phase_end(Phase::Advance);
            tracer.phase_start(Phase::Exchange);
            let (sent, _received) =
                route_store(comm, me, &grid, &vps, &assignment, &mut store, &mut bufs);
            if let RankStore::Binned(b) = &mut store {
                if b.rebin_due() {
                    b.rebin(&grid);
                }
            }
            tracer.phase_end(Phase::Exchange);
            sent_window += sent as u64;

            if s % params.interval == 0 && s < cfg.steps {
                tracer.phase_start(Phase::Balance);
                sent_window += rebalance(
                    comm,
                    &vps,
                    &mut assignment,
                    params.balancer,
                    &mut store,
                    &mut bufs,
                    me,
                    &grid,
                    tracer,
                ) as u64;
                tracer.phase_end(Phase::Balance);
            }

            if every > 0 && (s as u64).is_multiple_of(every) {
                let msgs = bufs.take_message_counts();
                global_count = snapshot_loads(comm, tracer, store.len() as u64, sent_window, msgs);
                sent_window = 0;
            }
            tracer.end_step(global_count);
        }

        let particles = store.to_particles();
        tracer.phase_start(Phase::Verify);
        let local = verify_all(&grid, &particles, cfg.steps, 0, DEFAULT_TOLERANCE);
        let checked = allreduce_u64(comm, local.checked, ReduceOp::Sum);
        let failures = allreduce_u64(comm, local.position_failures, ReduceOp::Sum);
        let max_error = allreduce_f64(comm, local.max_error, ReduceOp::Max);
        let id_sum = allreduce_u128(comm, local.id_sum, ReduceOp::Sum);
        let failing_ids = merge_failing_ids(comm, &local.failing_ids);
        tracer.phase_end(Phase::Verify);
        let local_count = particles.len() as u64;
        let max_count = allreduce_u64(comm, local_count, ReduceOp::Max);
        let total_count = allreduce_u64(comm, local_count, ReduceOp::Sum);
        tracer.set_final_particles(total_count);
        let _ = nvps;
        ParOutcome {
            verify: VerifyReport {
                checked,
                position_failures: failures,
                max_error,
                failing_ids,
                id_sum,
                expected_id_sum,
                tolerance: DEFAULT_TOLERANCE,
            },
            local_count: particles.len(),
            max_count,
            total_count,
            steps: cfg.steps,
            kernel: store.kernel_desc(),
            local_particles: particles,
        }
    }

    fn route_store(
        comm: &Communicator,
        me: usize,
        grid: &pic_core::geometry::Grid,
        vps: &VpGrid,
        assignment: &[usize],
        store: &mut RankStore,
        bufs: &mut ExchangeBuffers,
    ) -> (usize, usize) {
        match store {
            RankStore::Aos(particles) => route_particles_with(
                comm,
                me,
                |p| {
                    let (c, r) = grid.cell_of_point(p.x, p.y);
                    assignment[vps.vp_of_cell(c, r)]
                },
                particles,
                bufs,
            ),
            RankStore::Binned(b) => route_binned_with(
                comm,
                me,
                |c, r| assignment[vps.vp_of_cell(c, r)],
                b,
                grid,
                bufs,
            ),
        }
    }

    #[inline]
    fn p_cell(grid: &pic_core::geometry::Grid, p: &Particle) -> (usize, usize) {
        grid.cell_of_point(p.x, p.y)
    }

    #[allow(clippy::too_many_arguments)]
    fn rebalance(
        comm: &Communicator,
        vps: &VpGrid,
        assignment: &mut Vec<usize>,
        balancer: Balancer,
        store: &mut RankStore,
        bufs: &mut ExchangeBuffers,
        me: usize,
        grid: &pic_core::geometry::Grid,
        tracer: &mut Tracer,
    ) -> usize {
        let nvps = vps.vp_count();
        let mut counts = vec![0u64; nvps];
        match store {
            RankStore::Aos(v) => {
                for p in v.iter() {
                    let (c, r) = p_cell(grid, p);
                    counts[vps.vp_of_cell(c, r)] += 1;
                }
            }
            RankStore::Binned(b) => {
                let batch = b.batch();
                for i in 0..batch.len() {
                    let (c, r) = grid.cell_of_point(batch.x[i], batch.y[i]);
                    counts[vps.vp_of_cell(c, r)] += 1;
                }
            }
        }
        let gathered = allgatherv(comm, encode_u64s(&counts));
        tracer.add(pic_trace::Counter::CollectiveBytes, counts.len() as u64 * 8);
        let mut global = vec![0u64; nvps];
        let mut scratch = Vec::with_capacity(nvps);
        for buf in &gathered {
            decode_u64s_into(buf, &mut scratch);
            for (slot, v) in global.iter_mut().zip(&scratch) {
                *slot += v;
            }
        }
        let loads: Vec<f64> = global.iter().map(|&c| c as f64).collect();
        let new_assignment = balancer.rebalance(&loads, assignment, comm.size());
        tracer.record_cuts('v', assignment, &global, &new_assignment);
        *assignment = new_assignment;
        let (sent, _received) = route_store(comm, me, grid, vps, assignment, store, bufs);
        sent
    }
}

fn cfg(n: u64, dist: Distribution, steps: u32) -> ParConfig {
    ParConfig::new(
        InitConfig::new(Grid::new(32).unwrap(), n, dist)
            .with_m(1)
            .build()
            .unwrap(),
        steps,
    )
}

fn assert_identical(
    label: &str,
    new: &[(ParOutcome, Option<TraceReport>)],
    old: &[(ParOutcome, Option<TraceReport>)],
) {
    assert_eq!(new.len(), old.len());
    for (rank, ((no, nr), (oo, or))) in new.iter().zip(old).enumerate() {
        assert!(no.verify.passed(), "{label} rank {rank}: {:?}", no.verify);
        assert_eq!(no.local_count, oo.local_count, "{label} rank {rank}");
        assert_eq!(no.max_count, oo.max_count, "{label} rank {rank}");
        assert_eq!(no.total_count, oo.total_count, "{label} rank {rank}");
        assert_eq!(no.verify.id_sum, oo.verify.id_sum, "{label} rank {rank}");
        let mut pn = no.local_particles.clone();
        let mut po = oo.local_particles.clone();
        pn.sort_by_key(|p| p.id);
        po.sort_by_key(|p| p.id);
        assert_eq!(pn, po, "{label} rank {rank}: particle sets differ");
        let (nr, or) = (nr.as_ref().expect(label), or.as_ref().expect(label));
        assert_eq!(nr.cuts, or.cuts, "{label} rank {rank}: VP reassignments");
        assert_eq!(nr.steps.len(), or.steps.len(), "{label} rank {rank}");
        for (sn, so) in nr.steps.iter().zip(&or.steps) {
            assert_eq!(sn.step, so.step, "{label} rank {rank}");
            assert_eq!(sn.particles, so.particles, "{label} rank {rank}");
            assert_eq!(sn.loads, so.loads, "{label} rank {rank} step {}", sn.step);
            assert_eq!(sn.stats, so.stats, "{label} rank {rank} step {}", sn.step);
            let mut cn = sn.counters;
            let mut co = so.counters;
            cn[Counter::OverlapNs.idx()] = 0;
            co[Counter::OverlapNs.idx()] = 0;
            assert_eq!(cn, co, "{label} rank {rank} step {} counters", sn.step);
        }
    }
}

#[test]
fn ampi_strategies_match_pre_refactor_loop() {
    for balancer in [Balancer::paper_default(), Balancer::Greedy, Balancer::None] {
        for ranks in [1usize, 2, 4] {
            let params = AmpiParams {
                d: 4,
                interval: 4,
                balancer,
            };
            let c = cfg(1200, Distribution::Geometric { r: 0.85 }, 24);
            let new = run_threads(ranks, |comm| {
                let mut t = Tracer::in_memory(1);
                let o = run_ampi_traced(&comm, &c, &params, &mut t);
                (o, t.finish())
            });
            let old = run_threads(ranks, |comm| {
                let mut t = Tracer::in_memory(1);
                let o = oracle::run_ampi_traced(&comm, &c, &params, &mut t);
                (o, t.finish())
            });
            assert_identical(&format!("ampi {balancer:?} ranks={ranks}"), &new, &old);
        }
    }
}

#[test]
fn ampi_adaptive_switch_sequence_is_replicated_on_every_rank() {
    let c = cfg(1200, Distribution::Geometric { r: 0.85 }, 40);
    let outcomes = run_threads(4, |comm| {
        let mut t = Tracer::in_memory(1);
        let o = pic_ampi::runtime::run_ampi_adaptive_traced(&comm, &c, 4, 4, &mut t);
        (o, t.finish())
    });
    let reference = outcomes[0]
        .1
        .as_ref()
        .expect("rank 0 traced")
        .switches
        .clone();
    assert!(
        !reference.is_empty(),
        "sustained geometric skew must trigger at least one VP-strategy switch"
    );
    for (rank, (o, report)) in outcomes.iter().enumerate() {
        assert!(o.verify.passed(), "rank {rank}: {:?}", o.verify);
        let report = report.as_ref().expect("all ranks traced");
        assert_eq!(
            report.switches, reference,
            "rank {rank} disagrees on the switch sequence"
        );
        assert_eq!(report.summary.balancer, "adaptive");
    }
}
