//! Minimal JSON value parser for validating and inspecting trace output.
//!
//! The workspace builds offline (no serde), so the trace layer carries its
//! own reader: a small recursive-descent parser covering the full JSON
//! grammar, plus an ndjson validator used by tests and the CI smoke check.
//! It is a *consumer-side* tool — the emitter in [`crate::tracer`] writes
//! records by hand and never goes through this module.

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` (every value the tracer
/// emits fits; u64 counters up to 2^53 round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset into the input plus a static message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as u64 (requires an exact non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let span = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        span.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            msg: "invalid number",
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\', "expected low surrogate")?;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed so multi-byte UTF-8
                    // sequences pass through intact.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Shape summary of a validated ndjson trace (see [`validate_ndjson`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NdjsonCheck {
    /// Non-empty lines parsed.
    pub lines: usize,
    /// Records by type.
    pub runs: usize,
    pub steps: usize,
    pub cuts: usize,
    pub switches: usize,
    /// The (single) summary record, when present.
    pub summary: Option<Json>,
}

/// Validate a newline-delimited JSON trace: every non-empty line must
/// parse as an object carrying a string `"type"` field, and at most one
/// `"summary"` record may appear. Errors name the offending line.
pub fn validate_ndjson(text: &str) -> Result<NdjsonCheck, String> {
    let mut check = NdjsonCheck {
        lines: 0,
        runs: 0,
        steps: 0,
        cuts: 0,
        switches: 0,
        summary: None,
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: record lacks a string \"type\"", lineno + 1))?;
        match ty {
            "run" => check.runs += 1,
            "step" => check.steps += 1,
            "cuts" => check.cuts += 1,
            "switch" => check.switches += 1,
            "summary" => {
                if check.summary.is_some() {
                    return Err(format!("line {}: duplicate summary record", lineno + 1));
                }
                check.summary = Some(v.clone());
            }
            other => {
                return Err(format!(
                    "line {}: unknown record type {other:?}",
                    lineno + 1
                ))
            }
        }
        check.lines += 1;
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u00e9\"").unwrap(),
            Json::Str("a\nb\u{e9}".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn surrogate_pair_round_trips() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn validates_ndjson_shape() {
        let good = "{\"type\":\"run\"}\n{\"type\":\"step\",\"step\":1}\n\
                    {\"type\":\"switch\",\"step\":1}\n{\"type\":\"summary\"}\n";
        let check = validate_ndjson(good).unwrap();
        assert_eq!((check.runs, check.steps, check.cuts), (1, 1, 0));
        assert_eq!(check.switches, 1);
        assert!(check.summary.is_some());

        assert!(validate_ndjson("{\"step\":1}\n").is_err(), "missing type");
        assert!(validate_ndjson("not json\n").is_err());
        assert!(
            validate_ndjson("{\"type\":\"summary\"}\n{\"type\":\"summary\"}\n").is_err(),
            "duplicate summary"
        );
    }
}
