//! # pic-trace — load-balance observability
//!
//! The paper's subject is *assessing* dynamic load balancing; this crate
//! is the instrument. A [`Tracer`] rides along any of the kernel's
//! execution loops and records, per step:
//!
//! * **phase timers** — advance / exchange / balance / verify wall time,
//! * **counters** — particles rehomed, border cells handed over by cut
//!   movement, bytes through collectives, rebin invocations,
//! * **load snapshots** — a per-rank (or per-column, serially) load
//!   vector reduced into [`pic_cluster::stats::BalanceStats`].
//!
//! Output is newline-delimited JSON (one record per line) plus an
//! end-of-run summary; [`validate_ndjson`] and the [`Json`] parser let
//! tests and the CI smoke check read it back without serde. The
//! relationship to [`pic_cluster::stats::LoadTrace`] is deliberate:
//! `LoadTrace` is the in-memory CSV time series used by harness-side
//! experiments, while the tracer streams the same statistics (plus
//! timing and migration counters) as ndjson during the run itself.
//!
//! The disabled tracer ([`Tracer::disabled`]) is free: every hot-path
//! method inlines to a null check, verified by a counting-allocator test
//! and a bench guard. See DESIGN.md ("Trace record schema").

pub mod json;
pub mod serial;
pub mod tracer;

pub use json::{validate_ndjson, Json, NdjsonCheck, ParseError};
pub use serial::trace_simulation;
pub use tracer::{
    Counter, CutRecord, Phase, StepRecord, SwitchRecord, TraceReport, TraceSummary, Tracer,
    COUNTER_COUNT, PHASE_COUNT, SCHEMA_VERSION,
};
