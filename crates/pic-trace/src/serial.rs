//! Tracing driver for the single-process [`Simulation`].
//!
//! The parallel runners thread a [`Tracer`] through their own loops (see
//! `pic-par`); the serial engine has no runner, so this module provides
//! one: step the simulation, time the sweep as the `advance` phase, count
//! rebins, and snapshot the per-*column* particle histogram as the load
//! vector at sampled steps (a single process has no per-rank loads — the
//! column distribution is the serial analogue, and it is exactly what the
//! x-cut balancers partition).

use crate::tracer::{Counter, Phase, Tracer};
use pic_core::engine::Simulation;

/// Run `steps` steps of `sim` under `tracer`. With a disabled tracer this
/// is `sim.run(steps)` plus one counter read per step — no clocks, no
/// allocation on the sweep path (pinned by `tests/disabled_overhead.rs`).
pub fn trace_simulation(sim: &mut Simulation, steps: u32, tracer: &mut Tracer) {
    if tracer.enabled() {
        // kernel_desc() allocates its String; skip it entirely on the
        // disabled path (emit_run_header would discard it anyway), keeping
        // the zero-allocation contract pinned by tests/disabled_overhead.rs.
        tracer.emit_run_header(
            "serial",
            1,
            sim.particle_count() as u64,
            steps as u64,
            &sim.kernel_desc(),
            "none",
        );
    }
    let mut hist: Vec<u64> = Vec::new();
    let mut loads: Vec<f64> = Vec::new();
    let mut rebins_seen = sim.rebin_count();
    for _ in 0..steps {
        let s = sim.step_index() as u64 + 1;
        tracer.begin_step(s);
        tracer.phase_start(Phase::Advance);
        sim.step();
        tracer.phase_end(Phase::Advance);
        let rebins = sim.rebin_count();
        tracer.add(Counter::Rebins, rebins - rebins_seen);
        rebins_seen = rebins;
        if tracer.wants_step(s) {
            sim.column_histogram_into(&mut hist);
            loads.clear();
            loads.extend(hist.iter().map(|&c| c as f64));
            tracer.record_loads(&loads);
        }
        tracer.end_step(sim.particle_count() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_core::dist::Distribution;
    use pic_core::engine::SweepMode;
    use pic_core::geometry::Grid;
    use pic_core::init::InitConfig;

    fn sim(mode: SweepMode) -> Simulation {
        let grid = Grid::new(16).unwrap();
        let setup = InitConfig::new(grid, 800, Distribution::Geometric { r: 0.9 })
            .with_m(1)
            .build()
            .unwrap();
        Simulation::with_mode(setup, mode)
    }

    #[test]
    fn traced_run_matches_untraced() {
        let mut plain = sim(SweepMode::Serial);
        plain.run(20);
        let mut traced = sim(SweepMode::Serial);
        let mut tracer = Tracer::in_memory(4);
        trace_simulation(&mut traced, 20, &mut tracer);
        assert_eq!(plain.particles(), traced.particles());
        assert!(traced.verify().passed());

        let report = tracer.finish().unwrap();
        assert_eq!(report.summary.steps, 20);
        assert_eq!(report.steps.len(), 5, "every=4 over 20 steps");
        assert_eq!(report.summary.final_particles, 800);
        // Load snapshots are per-column counts summing to the population.
        let rec = &report.steps[0];
        assert_eq!(rec.loads.iter().sum::<f64>(), 800.0);
        let stats = rec.stats.unwrap();
        assert!(stats.imbalance >= 1.0 && stats.imbalance.is_finite());
    }

    #[test]
    fn binned_mode_reports_rebins() {
        let mut s = sim(SweepMode::SoaBinned);
        let mut tracer = Tracer::in_memory(1);
        trace_simulation(&mut s, 32, &mut tracer);
        let report = tracer.finish().unwrap();
        let idx = Counter::ALL
            .iter()
            .position(|c| matches!(c, Counter::Rebins))
            .unwrap();
        // DEFAULT_REBIN = 16: two interval rebins over 32 steps.
        assert_eq!(report.summary.counters[idx], 2);
    }

    #[test]
    fn run_header_records_kernel_descriptor() {
        use crate::json::Json;
        // AoS serial mode: no explicit SIMD layer.
        let mut s = sim(SweepMode::Serial);
        let mut tracer = Tracer::in_memory(1);
        trace_simulation(&mut s, 1, &mut tracer);
        let report = tracer.finish().unwrap();
        let run = Json::parse(report.ndjson.lines().next().unwrap()).unwrap();
        assert_eq!(run.get("simd").unwrap().as_str(), Some("none"));

        // Fast binned mode: "<backend>/fast", and the traced run still
        // passes its analytic verification gate.
        let mut s = sim(SweepMode::SoaBinnedFast);
        let mut tracer = Tracer::in_memory(1);
        trace_simulation(&mut s, 20, &mut tracer);
        assert!(s.verify().passed());
        let report = tracer.finish().unwrap();
        let run = Json::parse(report.ndjson.lines().next().unwrap()).unwrap();
        let desc = run.get("simd").unwrap().as_str().unwrap().to_string();
        assert!(desc.ends_with("/fast"), "descriptor was {desc}");
        assert_eq!(desc, s.kernel_desc());
    }

    #[test]
    fn disabled_tracer_changes_nothing() {
        let mut plain = sim(SweepMode::Soa);
        plain.run(10);
        let mut traced = sim(SweepMode::Soa);
        let mut t = Tracer::disabled();
        trace_simulation(&mut traced, 10, &mut t);
        assert_eq!(plain.particles(), traced.particles());
        assert!(t.finish().is_none());
    }
}
