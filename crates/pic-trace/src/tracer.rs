//! The [`Tracer`]: step-scoped phase timers, migration counters, and
//! per-step load snapshots, emitted as newline-delimited JSON.
//!
//! # Zero overhead when disabled
//!
//! [`Tracer::disabled()`] is a `None` behind a single pointer-sized
//! option; every hot-path method is `#[inline]` and reduces to one null
//! check — no clock reads, no allocation, no branching on record
//! contents. `tests/disabled_overhead.rs` pins this with the workspace
//! counting-allocator pattern, and `benches/trace_overhead.rs` guards the
//! sweep loop.
//!
//! # Record stream
//!
//! An enabled tracer writes one JSON object per line:
//!
//! * `{"type":"run", ...}` — once, at [`Tracer::emit_run_header`].
//! * `{"type":"step", ...}` — at every step where `step % every == 0`.
//!   Phase times and counters cover the window since the previous step
//!   record (per-step values when `every == 1`).
//! * `{"type":"cuts", ...}` — one per cut-movement decision, unsampled.
//! * `{"type":"switch", ...}` — one per adaptive strategy switch, unsampled.
//! * `{"type":"summary", ...}` — once, from [`Tracer::finish`].
//!
//! Non-finite floats have no JSON representation and are emitted as
//! `null`; the CI smoke check treats that as a failure, which is the
//! point. See DESIGN.md ("Trace record schema") for the full field list.

use pic_cluster::stats::BalanceStats;
use std::fmt::Write as _;
use std::io::Write;
use std::time::Instant;

/// Trace schema version, stamped into run-header and summary records.
pub const SCHEMA_VERSION: u64 = 1;

/// Nanoseconds of CPU time consumed by the calling thread.
///
/// Unlike a wall clock, this does not advance while the thread is
/// blocked (channel receives, condvar waits), so phase *CPU* totals
/// measure work where phase *wall* totals measure work plus waiting —
/// the late-sender separation: a rank stalled in an exchange receive
/// accrues exchange wall time but no exchange CPU time. On non-Linux
/// targets this falls back to a monotonic wall clock (CPU == wall).
#[inline]
pub fn thread_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        // CLOCK_THREAD_CPUTIME_ID, per-thread CPU clock. Declared by
        // hand: the build is offline/std-only, and std already links
        // libc on every Linux target.
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
        }
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable timespec; the clock id is a
        // compile-time constant the kernel has supported since 2.6.12.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 {
            return (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64;
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Execution phases timed within a step. Units are nanoseconds of
/// wall-clock time on the recording rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Local particle work: force evaluation + position update (the sweep).
    Advance,
    /// Particle routing between ranks (rehoming / migration traffic).
    Exchange,
    /// Load-balancing decision plus the migration it triggers.
    Balance,
    /// End-of-run verification (trajectory check + id checksum).
    Verify,
}

/// Number of [`Phase`] variants (array-index bound).
pub const PHASE_COUNT: usize = 4;

impl Phase {
    /// All phases, in emission order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Advance,
        Phase::Exchange,
        Phase::Balance,
        Phase::Verify,
    ];

    /// Field-name stem; records use `"<name>_ns"`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Advance => "advance",
            Phase::Exchange => "exchange",
            Phase::Balance => "balance",
            Phase::Verify => "verify",
        }
    }

    /// Index into `phase_ns` arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Monotonic event counters accumulated between step records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Particles handed to another rank (global sum at traced steps).
    Rehomed,
    /// Border cells handed over by cut movement: Σ |new − old| × cells
    /// per column/row, exact because cut decisions replicate on all ranks.
    BorderCells,
    /// Bytes pushed through collectives by the recording rank.
    CollectiveBytes,
    /// Counting-sort (rebin) invocations in the binned store.
    Rebins,
    /// Exchange payload messages actually put on the wire (global sum at
    /// traced steps; the dense pattern sends one per rank pair per step).
    MsgsSent,
    /// Exchange payload messages the sparse protocol elided (global sum at
    /// traced steps); `sent + skipped` = what dense would have sent.
    MsgsSkipped,
    /// Nanoseconds the recording rank spent advancing interior columns
    /// while exchange messages were in flight (the overlap window).
    OverlapNs,
}

/// Number of [`Counter`] variants (array-index bound).
pub const COUNTER_COUNT: usize = 7;

impl Counter {
    /// All counters, in emission order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Rehomed,
        Counter::BorderCells,
        Counter::CollectiveBytes,
        Counter::Rebins,
        Counter::MsgsSent,
        Counter::MsgsSkipped,
        Counter::OverlapNs,
    ];

    /// JSON field name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Rehomed => "rehomed",
            Counter::BorderCells => "border_cells",
            Counter::CollectiveBytes => "collective_bytes",
            Counter::Rebins => "rebins",
            Counter::MsgsSent => "msgs_sent",
            Counter::MsgsSkipped => "msgs_skipped",
            Counter::OverlapNs => "overlap_ns",
        }
    }

    /// Index into `counters` arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// One emitted step record (the in-memory twin of a `"step"` line).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    pub step: u64,
    /// Global particle count after the step.
    pub particles: u64,
    /// Per-phase nanoseconds since the previous step record ([`Phase::ALL`] order).
    pub phase_ns: [u64; PHASE_COUNT],
    /// Counter deltas since the previous step record ([`Counter::ALL`] order).
    pub counters: [u64; COUNTER_COUNT],
    /// The raw load vector behind `stats` (empty if none was recorded).
    pub loads: Vec<f64>,
    /// Balance statistics of `loads`.
    pub stats: Option<BalanceStats>,
}

/// One adaptive strategy switch (the in-memory twin of a `"switch"` line).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRecord {
    pub step: u64,
    /// Name of the strategy that was active before the switch.
    pub from: String,
    /// Name of the strategy now in effect.
    pub to: String,
    /// The windowed imbalance signal that triggered the switch.
    pub imbalance: f64,
}

/// One cut-movement decision (the in-memory twin of a `"cuts"` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutRecord {
    pub step: u64,
    /// `'x'` or `'y'`.
    pub axis: char,
    /// Cut positions before the decision.
    pub old: Vec<usize>,
    /// The per-slab counts the decision saw.
    pub counts: Vec<u64>,
    /// Cut positions after the decision.
    pub new: Vec<usize>,
}

/// End-of-run totals (the in-memory twin of the `"summary"` line).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Steps traced (every step between header and finish).
    pub steps: u64,
    /// Step records actually emitted (`steps / every`, roughly).
    pub records: u64,
    /// Whole-run per-phase nanoseconds.
    pub phase_ns: [u64; PHASE_COUNT],
    /// Whole-run per-phase *CPU* nanoseconds ([`thread_cpu_ns`] deltas):
    /// work only, excluding blocked time, where `phase_ns` includes the
    /// waiting. In-memory only — the ndjson summary record (schema 1)
    /// carries the wall totals.
    pub phase_cpu_ns: [u64; PHASE_COUNT],
    /// Whole-run counter totals.
    pub counters: [u64; COUNTER_COUNT],
    /// Max `max/mean` imbalance over emitted records (1.0 if none).
    pub max_imbalance: f64,
    /// Mean `max/mean` imbalance over emitted records (1.0 if none).
    pub mean_imbalance: f64,
    /// Max Gini coefficient over emitted records.
    pub max_gini: f64,
    /// Global particle count at the last `end_step`.
    pub final_particles: u64,
    /// Balancer identity from the run header (`"none"` if never set).
    pub balancer: String,
    /// Number of adaptive strategy switches recorded.
    pub switches: u64,
}

/// Everything an enabled tracer captured, returned by [`Tracer::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    pub summary: TraceSummary,
    pub steps: Vec<StepRecord>,
    pub cuts: Vec<CutRecord>,
    pub switches: Vec<SwitchRecord>,
    /// The full ndjson stream, byte-identical to what the writer received.
    pub ndjson: String,
}

struct Inner {
    every: u32,
    writer: Option<Box<dyn Write + Send>>,
    ndjson: String,
    steps: Vec<StepRecord>,
    cuts: Vec<CutRecord>,
    switches: Vec<SwitchRecord>,
    balancer: String,
    // Current-window scratch, reset whenever a step record is emitted.
    cur_step: u64,
    pend_phase_ns: [u64; PHASE_COUNT],
    pend_counters: [u64; COUNTER_COUNT],
    cur_loads: Vec<f64>,
    cur_stats: Option<BalanceStats>,
    phase_open: [Option<(Instant, u64)>; PHASE_COUNT],
    // Whole-run aggregates.
    total_steps: u64,
    total_phase_ns: [u64; PHASE_COUNT],
    total_phase_cpu_ns: [u64; PHASE_COUNT],
    total_counters: [u64; COUNTER_COUNT],
    imb_sum: f64,
    imb_max: f64,
    gini_max: f64,
    n_stats: u64,
    last_particles: u64,
}

/// Step-scoped telemetry recorder; see the [module docs](self) for the
/// record stream it produces and the zero-overhead contract.
pub struct Tracer {
    inner: Option<Box<Inner>>,
}

impl Tracer {
    /// The no-op tracer every hot path takes by default. All methods on a
    /// disabled tracer reduce to a null check: no clocks, no allocation.
    #[inline]
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer that keeps records in memory only (tests, bench
    /// reports). `every` is the step-record sampling interval (clamped ≥ 1).
    pub fn in_memory(every: u32) -> Tracer {
        Tracer::build(None, every)
    }

    /// An enabled tracer that additionally streams ndjson lines to `w`.
    pub fn to_writer(w: Box<dyn Write + Send>, every: u32) -> Tracer {
        Tracer::build(Some(w), every)
    }

    /// Convenience: [`Tracer::to_writer`] over a buffered file.
    pub fn to_file(path: &str, every: u32) -> std::io::Result<Tracer> {
        let f = std::fs::File::create(path)?;
        Ok(Tracer::to_writer(
            Box::new(std::io::BufWriter::new(f)),
            every,
        ))
    }

    fn build(writer: Option<Box<dyn Write + Send>>, every: u32) -> Tracer {
        Tracer {
            inner: Some(Box::new(Inner {
                every: every.max(1),
                writer,
                ndjson: String::new(),
                steps: Vec::new(),
                cuts: Vec::new(),
                switches: Vec::new(),
                balancer: String::from("none"),
                cur_step: 0,
                pend_phase_ns: [0; PHASE_COUNT],
                pend_counters: [0; COUNTER_COUNT],
                cur_loads: Vec::new(),
                cur_stats: None,
                phase_open: [None; PHASE_COUNT],
                total_steps: 0,
                total_phase_ns: [0; PHASE_COUNT],
                total_phase_cpu_ns: [0; PHASE_COUNT],
                total_counters: [0; COUNTER_COUNT],
                imb_sum: 0.0,
                imb_max: 1.0,
                gini_max: 0.0,
                n_stats: 0,
                last_particles: 0,
            })),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Step-record sampling interval; 0 when disabled. Parallel runners
    /// reduce this across ranks so every rank joins the load-gather
    /// collectives at the same steps.
    #[inline]
    pub fn sample_every(&self) -> u32 {
        match &self.inner {
            Some(i) => i.every,
            None => 0,
        }
    }

    /// Would `end_step` emit a record for `step`? Callers gate the work of
    /// assembling a load snapshot on this.
    #[inline]
    pub fn wants_step(&self, step: u64) -> bool {
        match &self.inner {
            Some(i) => step.is_multiple_of(i.every as u64),
            None => false,
        }
    }

    /// Emit the one-line run header. `simd` is the kernel descriptor
    /// (`Simulation::kernel_desc`-style `"<backend>/<tier>"`, or
    /// `"none"`), recorded so a trace always states which force kernel —
    /// and in particular which precision contract, exact or fast —
    /// produced it. `balancer` is the load-balancing strategy in effect
    /// (`"none"`, `"static"`, `"diffusion"`, `"vp-refine"`, `"adaptive"`,
    /// ...), recorded here and in the summary so downstream tables can
    /// attribute results to the strategy that produced them.
    pub fn emit_run_header(
        &mut self,
        impl_name: &str,
        ranks: usize,
        particles: u64,
        steps: u64,
        simd: &str,
        balancer: &str,
    ) {
        if let Some(i) = &mut self.inner {
            i.balancer = balancer.to_string();
            let mut line = String::with_capacity(128);
            let _ = write!(
                line,
                "{{\"type\":\"run\",\"schema\":{SCHEMA_VERSION},\"impl\":{},\
                 \"ranks\":{ranks},\"particles\":{particles},\"steps\":{steps},\
                 \"every\":{},\"simd\":{},\"balancer\":{}}}",
                json_str(impl_name),
                i.every,
                json_str(simd),
                json_str(balancer)
            );
            i.emit(&line);
        }
    }

    /// Open step `step` (1-based, matching the engine's step index).
    #[inline]
    pub fn begin_step(&mut self, step: u64) {
        if let Some(i) = &mut self.inner {
            i.cur_step = step;
            i.cur_loads.clear();
            i.cur_stats = None;
            i.phase_open = [None; PHASE_COUNT];
        }
    }

    /// Start timing `p`. Unbalanced or nested starts of the same phase
    /// restart its clock.
    #[inline]
    pub fn phase_start(&mut self, p: Phase) {
        if let Some(i) = &mut self.inner {
            i.phase_open[p.idx()] = Some((Instant::now(), thread_cpu_ns()));
        }
    }

    /// Stop timing `p`, accumulating into the current window and run
    /// totals. A `phase_end` without a matching start is a no-op.
    #[inline]
    pub fn phase_end(&mut self, p: Phase) {
        if let Some(i) = &mut self.inner {
            if let Some((t0, cpu0)) = i.phase_open[p.idx()].take() {
                let ns = t0.elapsed().as_nanos() as u64;
                i.pend_phase_ns[p.idx()] += ns;
                i.total_phase_ns[p.idx()] += ns;
                i.total_phase_cpu_ns[p.idx()] += thread_cpu_ns().saturating_sub(cpu0);
            }
        }
    }

    /// Add `n` to counter `c`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        if let Some(i) = &mut self.inner {
            i.pend_counters[c.idx()] += n;
            i.total_counters[c.idx()] += n;
        }
    }

    /// Record the load vector for the current step; reduces it into
    /// [`BalanceStats`] for the step record. Call only at steps where
    /// [`Tracer::wants_step`] is true (snapshots at other steps are
    /// overwritten unseen).
    pub fn record_loads(&mut self, loads: &[f64]) {
        if let Some(i) = &mut self.inner {
            i.cur_loads.clear();
            i.cur_loads.extend_from_slice(loads);
            i.cur_stats = Some(BalanceStats::from_loads(loads));
        }
    }

    /// Record one cut-movement decision; emits a `"cuts"` line
    /// immediately (decisions are rare and never sampled away).
    pub fn record_cuts(&mut self, axis: char, old: &[usize], counts: &[u64], new: &[usize]) {
        if let Some(i) = &mut self.inner {
            let rec = CutRecord {
                step: i.cur_step,
                axis,
                old: old.to_vec(),
                counts: counts.to_vec(),
                new: new.to_vec(),
            };
            let mut line = String::with_capacity(96);
            let _ = write!(
                line,
                "{{\"type\":\"cuts\",\"step\":{},\"axis\":\"{}\"",
                rec.step, axis
            );
            line.push_str(",\"old\":");
            push_usize_arr(&mut line, &rec.old);
            line.push_str(",\"counts\":");
            push_u64_arr(&mut line, &rec.counts);
            line.push_str(",\"new\":");
            push_usize_arr(&mut line, &rec.new);
            line.push('}');
            i.emit(&line);
            i.cuts.push(rec);
        }
    }

    /// Record one adaptive strategy switch; emits a `"switch"` line
    /// immediately (switches are rare and never sampled away).
    pub fn record_switch(&mut self, from: &str, to: &str, imbalance: f64) {
        if let Some(i) = &mut self.inner {
            let rec = SwitchRecord {
                step: i.cur_step,
                from: from.to_string(),
                to: to.to_string(),
                imbalance,
            };
            let mut line = String::with_capacity(96);
            let _ = write!(
                line,
                "{{\"type\":\"switch\",\"step\":{},\"from\":{},\"to\":{}",
                rec.step,
                json_str(from),
                json_str(to)
            );
            line.push_str(",\"imbalance\":");
            push_f64(&mut line, imbalance);
            line.push('}');
            i.emit(&line);
            i.switches.push(rec);
        }
    }

    /// Close the current step. Emits a step record when `step % every ==
    /// 0`; the record's phase times and counters cover the window since
    /// the previous record.
    #[inline]
    pub fn end_step(&mut self, particles: u64) {
        if let Some(i) = &mut self.inner {
            i.total_steps += 1;
            i.last_particles = particles;
            if i.cur_step.is_multiple_of(i.every as u64) {
                i.emit_step_record(particles);
            }
        }
    }

    /// Pin the summary's `final_particles` with an exact global count
    /// (e.g. from the outcome's final collectives); otherwise the value
    /// from the last `end_step` is used, which between snapshots may lag
    /// behind injections/removals.
    pub fn set_final_particles(&mut self, n: u64) {
        if let Some(i) = &mut self.inner {
            i.last_particles = n;
        }
    }

    /// Emit the summary line, flush the writer, and hand back everything
    /// recorded. `None` for a disabled tracer.
    pub fn finish(self) -> Option<TraceReport> {
        let mut i = self.inner?;
        let summary = TraceSummary {
            steps: i.total_steps,
            records: i.steps.len() as u64,
            phase_ns: i.total_phase_ns,
            phase_cpu_ns: i.total_phase_cpu_ns,
            counters: i.total_counters,
            max_imbalance: i.imb_max,
            mean_imbalance: if i.n_stats == 0 {
                1.0
            } else {
                i.imb_sum / i.n_stats as f64
            },
            max_gini: i.gini_max,
            final_particles: i.last_particles,
            balancer: i.balancer.clone(),
            switches: i.switches.len() as u64,
        };
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"type\":\"summary\",\"schema\":{SCHEMA_VERSION},\"steps\":{},\"records\":{}",
            summary.steps, summary.records
        );
        for (idx, p) in Phase::ALL.iter().enumerate() {
            let _ = write!(line, ",\"{}_ns\":{}", p.name(), summary.phase_ns[idx]);
        }
        for (idx, c) in Counter::ALL.iter().enumerate() {
            let _ = write!(line, ",\"{}\":{}", c.name(), summary.counters[idx]);
        }
        line.push_str(",\"max_imbalance\":");
        push_f64(&mut line, summary.max_imbalance);
        line.push_str(",\"mean_imbalance\":");
        push_f64(&mut line, summary.mean_imbalance);
        line.push_str(",\"max_gini\":");
        push_f64(&mut line, summary.max_gini);
        let _ = write!(line, ",\"final_particles\":{}", summary.final_particles);
        let _ = write!(
            line,
            ",\"balancer\":{},\"switches\":{}}}",
            json_str(&summary.balancer),
            summary.switches
        );
        i.emit(&line);
        if let Some(w) = &mut i.writer {
            let _ = w.flush();
        }
        Some(TraceReport {
            summary,
            steps: std::mem::take(&mut i.steps),
            cuts: std::mem::take(&mut i.cuts),
            switches: std::mem::take(&mut i.switches),
            ndjson: std::mem::take(&mut i.ndjson),
        })
    }
}

impl Inner {
    fn emit(&mut self, line: &str) {
        self.ndjson.push_str(line);
        self.ndjson.push('\n');
        if let Some(w) = &mut self.writer {
            let _ = writeln!(w, "{line}");
        }
    }

    fn emit_step_record(&mut self, particles: u64) {
        let rec = StepRecord {
            step: self.cur_step,
            particles,
            phase_ns: std::mem::take(&mut self.pend_phase_ns),
            counters: std::mem::take(&mut self.pend_counters),
            loads: std::mem::take(&mut self.cur_loads),
            stats: self.cur_stats.take(),
        };
        if let Some(st) = &rec.stats {
            self.n_stats += 1;
            self.imb_sum += st.imbalance;
            self.imb_max = self.imb_max.max(st.imbalance);
            self.gini_max = self.gini_max.max(st.gini);
        }
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"type\":\"step\",\"step\":{},\"particles\":{}",
            rec.step, rec.particles
        );
        for (idx, p) in Phase::ALL.iter().enumerate() {
            let _ = write!(line, ",\"{}_ns\":{}", p.name(), rec.phase_ns[idx]);
        }
        for (idx, c) in Counter::ALL.iter().enumerate() {
            let _ = write!(line, ",\"{}\":{}", c.name(), rec.counters[idx]);
        }
        if let Some(st) = &rec.stats {
            line.push_str(",\"loads\":[");
            for (idx, l) in rec.loads.iter().enumerate() {
                if idx > 0 {
                    line.push(',');
                }
                push_f64(&mut line, *l);
            }
            line.push(']');
            line.push_str(",\"load_max\":");
            push_f64(&mut line, st.max);
            line.push_str(",\"load_min\":");
            push_f64(&mut line, st.min);
            line.push_str(",\"load_mean\":");
            push_f64(&mut line, st.mean);
            line.push_str(",\"imbalance\":");
            push_f64(&mut line, st.imbalance);
            line.push_str(",\"cv\":");
            push_f64(&mut line, st.cv);
            line.push_str(",\"gini\":");
            push_f64(&mut line, st.gini);
        }
        line.push('}');
        self.emit(&line);
        self.steps.push(rec);
    }
}

/// Render `v` as a JSON number; non-finite values become `null` (JSON has
/// no NaN/inf, and downstream finiteness checks must see the hole).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_u64_arr(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn push_usize_arr(out: &mut String, vals: &[usize]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Render a JSON string literal with the escapes the grammar requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{validate_ndjson, Json};

    /// A phase spent blocked accrues wall time but (on Linux) almost no
    /// CPU time; a phase spent computing accrues both. This is the
    /// work-vs-wait separation `bench_par`'s exchange-work metric rests
    /// on.
    #[test]
    fn phase_cpu_clock_excludes_blocked_time() {
        let mut t = Tracer::in_memory(1);
        t.begin_step(1);
        t.phase_start(Phase::Advance);
        // Busy work the optimizer can't delete.
        let mut acc = 0u64;
        for i in 0..20_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert_ne!(acc, 1);
        t.phase_end(Phase::Advance);
        t.phase_start(Phase::Exchange);
        std::thread::sleep(std::time::Duration::from_millis(60));
        t.phase_end(Phase::Exchange);
        t.end_step(0);
        let s = t.finish().unwrap().summary;
        // Busy phase: CPU tracks wall (both nonzero; CPU never exceeds
        // wall by more than clock granularity).
        let adv = Phase::Advance.idx();
        assert!(s.phase_cpu_ns[adv] > 0, "busy phase recorded no CPU time");
        assert!(s.phase_cpu_ns[adv] <= s.phase_ns[adv] + 1_000_000);
        // Blocked phase: wall sees the sleep, the CPU clock must not.
        let ex = Phase::Exchange.idx();
        assert!(s.phase_ns[ex] >= 50_000_000, "sleep not captured in wall");
        #[cfg(target_os = "linux")]
        assert!(
            s.phase_cpu_ns[ex] < s.phase_ns[ex] / 2,
            "CPU clock counted blocked time: cpu={} wall={}",
            s.phase_cpu_ns[ex],
            s.phase_ns[ex]
        );
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.sample_every(), 0);
        assert!(!t.wants_step(1));
        t.begin_step(1);
        t.phase_start(Phase::Advance);
        t.phase_end(Phase::Advance);
        t.add(Counter::Rehomed, 5);
        t.record_loads(&[1.0, 2.0]);
        t.record_cuts('x', &[0, 4], &[10, 2], &[0, 3]);
        t.record_switch("static", "diffusion", 1.5);
        t.end_step(100);
        assert!(t.finish().is_none());
    }

    #[test]
    fn emits_valid_ndjson_stream() {
        let mut t = Tracer::in_memory(1);
        t.emit_run_header("test", 4, 1000, 2, "avx2/exact", "adaptive");
        for s in 1..=2u64 {
            t.begin_step(s);
            t.phase_start(Phase::Advance);
            t.phase_end(Phase::Advance);
            t.add(Counter::Rehomed, 3);
            t.record_loads(&[4.0, 2.0, 1.0, 1.0]);
            t.end_step(1000);
        }
        t.record_switch("static", "diffusion", 1.75);
        t.record_cuts('x', &[0, 8, 16], &[30, 10], &[0, 6, 16]);
        let report = t.finish().unwrap();

        let check = validate_ndjson(&report.ndjson).unwrap();
        assert_eq!((check.runs, check.steps, check.cuts), (1, 2, 1));
        assert_eq!(check.switches, 1);
        let summary = check.summary.expect("summary record");
        assert_eq!(summary.get("steps").unwrap().as_u64(), Some(2));
        assert_eq!(summary.get("rehomed").unwrap().as_u64(), Some(6));
        assert_eq!(summary.get("balancer").unwrap().as_str(), Some("adaptive"));
        assert_eq!(summary.get("switches").unwrap().as_u64(), Some(1));
        assert_eq!(report.summary.balancer, "adaptive");
        assert_eq!(report.summary.switches, 1);
        assert_eq!(report.switches.len(), 1);
        assert_eq!(report.switches[0].from, "static");
        assert_eq!(report.switches[0].to, "diffusion");
        assert_eq!(report.switches[0].imbalance, 1.75);
        // loads [4,2,1,1]: mean 2, imbalance 2.0 every step.
        assert_eq!(summary.get("max_imbalance").unwrap().as_f64(), Some(2.0));
        assert_eq!(summary.get("mean_imbalance").unwrap().as_f64(), Some(2.0));
        assert_eq!(report.summary.final_particles, 1000);
        assert_eq!(report.steps.len(), 2);
        assert_eq!(report.steps[0].stats.unwrap().imbalance, 2.0);
        assert_eq!(report.cuts[0].new, vec![0, 6, 16]);

        // Step lines carry the raw load vector for independent recompute.
        let first_step = report
            .ndjson
            .lines()
            .find(|l| l.contains("\"type\":\"step\""))
            .unwrap();
        let v = Json::parse(first_step).unwrap();
        let loads: Vec<f64> = v
            .get("loads")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(loads, vec![4.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn sampling_interval_batches_windows() {
        let mut t = Tracer::in_memory(5);
        assert_eq!(t.sample_every(), 5);
        for s in 1..=10u64 {
            assert_eq!(t.wants_step(s), s % 5 == 0);
            t.begin_step(s);
            t.add(Counter::Rebins, 1);
            t.end_step(50);
        }
        let report = t.finish().unwrap();
        assert_eq!(report.steps.len(), 2);
        // Each record covers the 5-step window since the previous one.
        assert_eq!(report.steps[0].counters[Counter::Rebins.idx()], 5);
        assert_eq!(report.steps[1].counters[Counter::Rebins.idx()], 5);
        assert_eq!(report.summary.counters[Counter::Rebins.idx()], 10);
        assert_eq!(report.summary.steps, 10);
        assert_eq!(report.summary.records, 2);
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut t = Tracer::in_memory(1);
        t.begin_step(1);
        t.record_loads(&[f64::NAN, f64::INFINITY]);
        t.end_step(0);
        let report = t.finish().unwrap();
        let line = report
            .ndjson
            .lines()
            .find(|l| l.contains("\"type\":\"step\""))
            .unwrap();
        let v = Json::parse(line).expect("null-for-NaN keeps the line valid JSON");
        assert!(v.get("loads").unwrap().as_array().unwrap()[0].is_null());
    }

    #[test]
    fn run_header_escapes_strings() {
        let mut t = Tracer::in_memory(1);
        t.emit_run_header("im\"pl\n", 1, 0, 0, "sca\"lar", "ad\"aptive");
        let report = t.finish().unwrap();
        let v = Json::parse(report.ndjson.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("impl").unwrap().as_str(), Some("im\"pl\n"));
        assert_eq!(v.get("simd").unwrap().as_str(), Some("sca\"lar"));
        assert_eq!(v.get("balancer").unwrap().as_str(), Some("ad\"aptive"));
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(SCHEMA_VERSION));
    }

    #[test]
    fn writer_receives_the_same_bytes() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let mut t = Tracer::to_writer(Box::new(sink.clone()), 1);
        t.emit_run_header("w", 1, 10, 1, "none", "none");
        t.begin_step(1);
        t.end_step(10);
        let report = t.finish().unwrap();
        let written = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert_eq!(written, report.ndjson);
    }
}
