//! Zero-overhead audit for the disabled tracer.
//!
//! The contract (DESIGN.md, "Trace record schema"): `Tracer::disabled()`
//! on the hot path costs one null check — in particular, **zero heap
//! allocations** in the steady-state step loop. Same counting
//! `#[global_allocator]` pattern as `pic-core/tests/alloc_steady_state.rs`
//! (thread-scoped const-init TLS flag, so the libtest main thread can't
//! pollute the audit).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use pic_core::dist::Distribution;
use pic_core::engine::{Simulation, SweepMode};
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_trace::{trace_simulation, Counter, Phase, Tracer};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True only on the auditing thread, only inside the counted region.
    static IN_SCOPE: Cell<bool> = const { Cell::new(false) };
}

fn note_alloc() {
    let counted = IN_SCOPE.try_with(Cell::get).unwrap_or(false);
    if counted {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn warmed_sim(mode: SweepMode) -> Simulation {
    let grid = Grid::new(32).unwrap();
    let setup = InitConfig::new(grid, 2_000, Distribution::Geometric { r: 0.9 })
        .with_m(1)
        .build()
        .unwrap();
    // Rebin interval 3 so the warm-up (like pic-core's steady-state audit)
    // includes non-identity rebins: the gather scratch must be sized before
    // the counted region starts.
    let mut sim = Simulation::with_mode(setup, mode)
        .with_chunk_size(256)
        .with_rebin_interval(3);
    sim.run(8); // pool spawned, binned scratch warmed
    sim
}

#[test]
fn disabled_tracer_step_loop_allocates_nothing() {
    for mode in [
        SweepMode::Serial,
        SweepMode::SoaChunked,
        SweepMode::SoaBinned,
    ] {
        let mut sim = warmed_sim(mode);
        let mut tracer = Tracer::disabled();

        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        IN_SCOPE.with(|s| s.set(true));
        trace_simulation(&mut sim, 50, &mut tracer);
        IN_SCOPE.with(|s| s.set(false));
        let after = ALLOC_CALLS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{mode:?}: disabled-tracer loop must not allocate ({} allocations in 50 steps)",
            after - before
        );
        assert!(tracer.finish().is_none());
    }
}

#[test]
fn disabled_tracer_primitives_allocate_nothing() {
    let mut tracer = Tracer::disabled();
    let loads = [1.0f64, 2.0, 3.0];

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    IN_SCOPE.with(|s| s.set(true));
    for step in 0..10_000u64 {
        tracer.begin_step(step);
        tracer.phase_start(Phase::Exchange);
        tracer.phase_end(Phase::Exchange);
        tracer.add(Counter::Rehomed, 7);
        tracer.record_loads(&loads);
        tracer.record_cuts('x', &[0, 1], &[3, 4], &[0, 2]);
        tracer.end_step(3);
    }
    IN_SCOPE.with(|s| s.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled primitives must not allocate");
}
