//! Minimal, offline stand-in for the `criterion` benchmarking API used by
//! this workspace (see `shims/README.md`).
//!
//! Measurement model: each benchmark routine is warmed up briefly, then
//! timed over a fixed number of batches; the reported figure is the median
//! batch time divided by iterations per batch. No statistical analysis,
//! plots, or saved baselines — output is one text line per benchmark.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported opaque-value barrier, same contract as the real crate.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; measurement here is identical for
/// all variants (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput, used to print a per-element rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `BenchmarkId::new("name", parameter)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter*` methods run and time the routine.
pub struct Bencher<'a> {
    /// Median nanoseconds per iteration, recorded for the caller.
    result_ns: &'a mut f64,
    batches: usize,
    warmup: Duration,
}

impl<'a> Bencher<'a> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and discover a batch size that takes a measurable time.
        let mut iters_per_batch: u64 = 1;
        let warmup_deadline = Instant::now() + self.warmup;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warmup_deadline {
                break;
            }
            if dt < Duration::from_millis(1) && iters_per_batch < 1 << 20 {
                iters_per_batch *= 2;
            }
        }

        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples[samples.len() / 2];
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed region, once per iteration.
        let warmup_deadline = Instant::now() + self.warmup;
        while Instant::now() < warmup_deadline {
            let input = setup();
            black_box(routine(input));
        }

        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples[samples.len() / 2];
    }
}

/// Top-level driver; groups print their measurements as they finish.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", name, sample_size, None, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut result_ns = f64::NAN;
    let mut bencher = Bencher {
        result_ns: &mut result_ns,
        batches: sample_size,
        warmup: Duration::from_millis(150),
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if result_ns.is_nan() {
        println!("{full:<48} (no measurement)");
        return;
    }
    match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            println!(
                "{full:<48} {:>12.1} ns/iter  {:>10.2} ns/elem",
                result_ns,
                result_ns / n as f64
            );
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            let gib_s = n as f64 / result_ns; // bytes/ns == GB/s
            println!(
                "{full:<48} {:>12.1} ns/iter  {:>10.2} GB/s",
                result_ns, gib_s
            );
        }
        _ => println!("{full:<48} {:>12.1} ns/iter", result_ns),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_number() {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            result_ns: &mut ns,
            batches: 3,
            warmup: Duration::from_millis(1),
        };
        b.iter(|| black_box(3u64) * 7);
        assert!(ns.is_finite() && ns >= 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            result_ns: &mut ns,
            batches: 3,
            warmup: Duration::from_millis(1),
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(ns.is_finite());
    }
}
