//! Minimal, deterministic re-implementation of the `proptest` API surface
//! used by this workspace (see `shims/README.md` for scope and caveats).
//!
//! Each `proptest!`-generated test runs `ProptestConfig::cases` cases with
//! inputs drawn from the given strategies by a SplitMix64 RNG seeded from
//! the test's name (plus the optional `PROPTEST_SEED` environment
//! variable), so failures reproduce exactly. There is no shrinking: a
//! failure reports the generated inputs verbatim.

use std::fmt::Debug;

pub mod test_runner {
    /// Run configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// SplitMix64 — tiny, seedable, and statistically fine for test-input
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Deterministic seed derived from the test name (FNV-1a) and the
        /// optional `PROPTEST_SEED` env var.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A source of random values. Unlike real proptest there is no value
    /// tree: generation is direct and unshrinkable.
    pub trait Strategy {
        type Value: Debug;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// `strategy.prop_map(f)`.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            // Guard against rounding up to the exclusive bound.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    /// Full-range generation for `any::<T>()`.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `prop::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// `prop::sample::select(values)` — uniform choice from a vector.
    pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty vector");
        Select { values }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

/// The items tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::bool::ANY`,
    /// `prop::sample::select`), mirroring the real crate's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Render one generated binding for a failure report.
pub fn format_binding<T: Debug>(name: &str, value: &T, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(out, "\n    {name} = {value:?}");
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)+), l);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The `proptest! { ... }` block macro: expands every contained function
/// into a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    // Generate all inputs up front so the failure report can
                    // show them even when the body diverges early.
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let mut rendered = String::new();
                    $($crate::format_binding(stringify!($arg), &$arg, &mut rendered);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case}/{} failed: {msg}\n  inputs:{rendered}",
                                config.cases
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn collection_vec_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            let exact = prop::collection::vec(0u64..10, 6).generate(&mut rng);
            assert_eq!(exact.len(), 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(a in 0u64..100, b in prop::bool::ANY) {
            prop_assume!(a != 99);
            prop_assert!(a < 100, "a = {a}");
            prop_assert_eq!(b as u64 * 2 / 2, b as u64);
            prop_assert_ne!(a + 1, 0);
        }

        #[test]
        fn map_and_select_work(
            g in (1usize..10).prop_map(|n| n * 2),
            pick in prop::sample::select(vec![1i32, 3, 5]),
        ) {
            prop_assert_eq!(g % 2, 0);
            prop_assert!(pick % 2 == 1);
        }
    }
}
