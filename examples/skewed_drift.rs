//! The paper's §V head-to-head at miniature scale, run *functionally* on
//! thread ranks: static `mpi-2d` decomposition vs the diffusion balancer
//! on the drifting geometric distribution.
//!
//! ```sh
//! cargo run --release --example skewed_drift
//! ```

use pic_comm::world::run_threads;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion, DiffusionParams};
use pic_par::runner::ParConfig;
use pic_prk::prelude::*;

fn main() {
    let ranks = 8;
    let cfg = ParConfig::new(
        InitConfig::new(
            Grid::new(64).unwrap(),
            20_000,
            Distribution::Geometric { r: 0.95 },
        )
        .with_m(1)
        .build()
        .unwrap(),
        200,
    );
    let ideal = 20_000 / ranks as u64;

    println!("== mpi-2d (static, no load balancing) on {ranks} thread-ranks ==");
    let base = run_threads(ranks, |comm| run_baseline(&comm, &cfg));
    report(&base[0].verify, base[0].max_count, ideal);

    // The skew drifts one cell per step, so the balancer must be able to
    // move cuts faster than that: border_w / interval > 1.
    let params = DiffusionParams {
        interval: 1,
        tau: 20,
        border_w: 3,
    };
    println!(
        "\n== mpi-2d-LB (diffusion, interval={}, τ={}, w={}) ==",
        params.interval, params.tau, params.border_w
    );
    let diff = run_threads(ranks, |comm| run_diffusion(&comm, &cfg, params));
    report(&diff[0].verify, diff[0].max_count, ideal);

    let gain = base[0].max_count as f64 / diff[0].max_count as f64;
    println!("\nmax-particles-per-rank improvement from diffusion LB: {gain:.2}×");
    println!("(the paper's 24-core run: 62,645 → 30,585, ideal 25,000)");
    assert!(base[0].verify.passed() && diff[0].verify.passed());
}

fn report(verify: &pic_prk::core::verify::VerifyReport, max_count: u64, ideal: u64) {
    println!("  verified              : {}", verify.passed());
    println!(
        "  max particles per rank: {max_count} (ideal {ideal}, ratio {:.2}×)",
        max_count as f64 / ideal as f64
    );
}
