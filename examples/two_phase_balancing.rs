//! The full two-phase diffusion scheme (paper §IV-B) on the rotated
//! workload (paper §III-E1's 90° rotation): a one-directional balancer is
//! blind to the rotated skew; the two-phase scheme handles any
//! orientation.
//!
//! ```sh
//! cargo run --release --example two_phase_balancing
//! ```

use pic_comm::world::run_threads;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion_mode, DiffusionMode, DiffusionParams};
use pic_par::runner::ParConfig;
use pic_prk::core::init::SkewAxis;
use pic_prk::prelude::*;

fn main() {
    let ranks = 4;
    let params = DiffusionParams {
        interval: 1,
        tau: 0,
        border_w: 2,
    };
    for (label, axis, m) in [
        ("column skew (the paper's orientation)", SkewAxis::X, 0),
        ("row skew (rotated 90°)", SkewAxis::Y, 1),
    ] {
        let cfg = ParConfig::new(
            InitConfig::new(
                Grid::new(64).unwrap(),
                12_000,
                Distribution::Geometric { r: 0.85 },
            )
            .with_skew_axis(axis)
            .with_m(m)
            .build()
            .unwrap(),
            120,
        );
        let ideal = 12_000 / ranks as u64;
        println!("== {label} ==");
        let base = run_threads(ranks, |comm| run_baseline(&comm, &cfg));
        println!(
            "  static         : max/rank {} (ideal {ideal})",
            base[0].max_count
        );
        for (name, mode) in [
            ("x-only LB     ", DiffusionMode::XOnly),
            ("y-only LB     ", DiffusionMode::YOnly),
            ("two-phase LB  ", DiffusionMode::TwoPhase),
        ] {
            let out = run_threads(ranks, |comm| run_diffusion_mode(&comm, &cfg, params, mode));
            assert!(out[0].verify.passed());
            println!("  {name}: max/rank {}", out[0].max_count);
        }
        println!();
    }
    println!("A balancer aligned with the drift direction helps; the rotated");
    println!("workload defeats it; the two-phase scheme handles both.");
}
