//! A miniature of the paper's Figure 6: modeled strong scaling of the
//! three implementations on an Edison-like machine model, at 1/100 of the
//! paper's step count (run the `paper_all` binary for the full thing).
//!
//! ```sh
//! cargo run --release --example modeled_scaling
//! ```

use pic_bench as _; // examples live in the facade crate; drivers in pic-bench
use pic_prk as _;

fn main() {
    // Reuse the bench crate's drivers directly.
    let pts = pic_bench::fig6_right(100);
    println!("modeled strong scaling (2,998² cells, 600k particles, 60 steps):\n");
    println!("{}", pic_bench::report::scaling_markdown(&pts));
    println!("Expected shape (paper Figure 6 right): mpi-2d-LB fastest, ampi in");
    println!("between, mpi-2d slowest; the gap widens with the core count.");
    let last = pts.last().unwrap();
    assert!(last.diffusion_s < last.baseline_s);
}
