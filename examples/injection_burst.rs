//! Particle injection/removal events (paper §III-E5): "injections/removals
//! adjust abruptly the local amount of work", stressing how quickly a
//! balancing strategy adapts.
//!
//! ```sh
//! cargo run --release --example injection_burst
//! ```

use pic_comm::world::run_threads;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion, DiffusionParams};
use pic_par::runner::ParConfig;
use pic_prk::prelude::*;

fn main() {
    let grid = Grid::new(64).unwrap();
    // Start uniform; at step 50 a burst of 30,000 particles appears in the
    // left half of the domain; at step 150 particles in the right half
    // start vanishing.
    let burst_region = Region {
        x0: 0,
        x1: 32,
        y0: 0,
        y1: 64,
    };
    let drain_region = Region {
        x0: 32,
        x1: 64,
        y0: 0,
        y1: 64,
    };
    let setup = InitConfig::new(grid, 10_000, Distribution::Uniform)
        .with_m(1)
        .build()
        .unwrap()
        .with_event(Event::inject(50, burst_region, 30_000, 0, 1, 1))
        .with_event(Event::remove(150, drain_region, 5_000));
    let cfg = ParConfig::new(setup, 250);

    println!("population schedule: 10,000 → +30,000 @step 50 → −5,000 @step 150 → 35,000");

    let base = run_threads(8, |comm| run_baseline(&comm, &cfg));
    println!(
        "\nmpi-2d     : verified={} total={} max/rank={}",
        base[0].verify.passed(),
        base[0].total_count,
        base[0].max_count
    );

    let params = DiffusionParams {
        interval: 1,
        tau: 100,
        border_w: 2,
    };
    let diff = run_threads(8, |comm| run_diffusion(&comm, &cfg, params));
    println!(
        "mpi-2d-LB  : verified={} total={} max/rank={}",
        diff[0].verify.passed(),
        diff[0].total_count,
        diff[0].max_count
    );

    assert!(base[0].verify.passed() && diff[0].verify.passed());
    assert_eq!(base[0].total_count, 35_000);
    assert_eq!(diff[0].total_count, 35_000);
    println!(
        "\ndiffusion adapts to the burst: max/rank {} vs baseline {}",
        diff[0].max_count, base[0].max_count
    );
}
