//! Quickstart: build a PIC PRK simulation, run it, verify it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pic_prk::prelude::*;

fn main() {
    // A 64×64-cell periodic mesh with 10,000 particles in the paper's
    // geometrically skewed distribution (r = 0.99 here so the skew is
    // visible on a small grid). k = 0 → the whole distribution drifts
    // right one cell per step; m = 1 → one cell up per step.
    let grid = Grid::new(64).expect("even grid size");
    let setup = InitConfig::new(grid, 10_000, Distribution::Geometric { r: 0.99 })
        .with_k(0)
        .with_m(1)
        .build()
        .expect("valid configuration");

    let mut sim = Simulation::new(setup);

    println!("initial column histogram (particles per cell column, coarse):");
    print_histogram(&sim.column_histogram());

    sim.run(1_000);

    println!(
        "\nafter 1,000 steps (the distribution rotated {} columns):",
        1_000 % 64
    );
    print_histogram(&sim.column_histogram());

    // The kernel is self-verifying: every particle's final position is
    // known in closed form, and the id checksum catches lost particles.
    let report = sim.verify();
    println!("\nverification:");
    println!("  particles checked      : {}", report.checked);
    println!("  position failures      : {}", report.position_failures);
    println!("  max trajectory error   : {:.2e}", report.max_error);
    println!(
        "  id checksum            : {} (expected {})",
        report.id_sum, report.expected_id_sum
    );
    println!("  PASSED                 : {}", report.passed());
    assert!(report.passed());
}

fn print_histogram(hist: &[u64]) {
    // Coarsen to 16 buckets and print a bar chart.
    let bucket = hist.len() / 16;
    let sums: Vec<u64> = (0..16)
        .map(|b| hist[b * bucket..(b + 1) * bucket].iter().sum())
        .collect();
    let max = *sums.iter().max().unwrap_or(&1);
    for (b, &s) in sums.iter().enumerate() {
        let bar = "#".repeat((s * 40 / max.max(1)) as usize);
        println!(
            "  cols {:3}-{:3} | {:6} {}",
            b * bucket,
            (b + 1) * bucket - 1,
            s,
            bar
        );
    }
}
