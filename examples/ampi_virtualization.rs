//! Runtime-orchestrated load balancing à la Adaptive MPI: the domain is
//! over-decomposed into virtual processors and the runtime migrates VPs
//! from the most- to the least-loaded core — no application knowledge.
//!
//! ```sh
//! cargo run --release --example ampi_virtualization
//! ```

use pic_ampi::balancer::{imbalance, Balancer};
use pic_ampi::model::AmpiParams;
use pic_ampi::runtime::run_ampi;
use pic_ampi::vp::VpGrid;
use pic_comm::world::run_threads;
use pic_par::runner::ParConfig;
use pic_prk::prelude::*;

fn main() {
    let cores = 4;
    let cfg = ParConfig::new(
        InitConfig::new(
            Grid::new(64).unwrap(),
            20_000,
            Distribution::Geometric { r: 0.9 },
        )
        .with_m(1)
        .build()
        .unwrap(),
        200,
    );

    // Show what over-decomposition looks like.
    let grid = VpGrid::new(64, cores, 8);
    println!(
        "over-decomposition: {} cores × d=8 → {} VPs on a {}×{} VP grid",
        cores,
        grid.vp_count(),
        grid.decomp.px,
        grid.decomp.py
    );
    let asg = grid.initial_assignment();
    let loads: Vec<f64> = (0..grid.vp_count()).map(|v| (v % 7) as f64 + 1.0).collect();
    println!(
        "initial (locality-preserving) placement imbalance on synthetic loads: {:.2}",
        imbalance(&loads, &asg, cores)
    );

    for (name, balancer) in [
        ("no balancing (over-decomposition only)", Balancer::None),
        (
            "refine (most→least loaded, the paper's choice)",
            Balancer::paper_default(),
        ),
        ("greedy (full Charm++-style remap)", Balancer::Greedy),
    ] {
        let params = AmpiParams {
            d: 8,
            interval: 10,
            balancer,
        };
        let out = run_threads(cores, |comm| run_ampi(&comm, &cfg, &params));
        println!(
            "\n{name}:\n  verified: {}   max particles/core: {} (ideal {})",
            out[0].verify.passed(),
            out[0].max_count,
            20_000 / cores as u64
        );
        assert!(out[0].verify.passed());
    }
}
