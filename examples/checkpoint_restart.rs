//! Checkpoint/restart: interrupt a run, serialize the complete state,
//! resume, and verify the continuation is bit-exact with an uninterrupted
//! run.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart
//! ```

use pic_prk::core::checkpoint::CheckpointData;
use pic_prk::core::engine::SweepMode;
use pic_prk::prelude::*;

fn main() {
    let grid = Grid::new(64).unwrap();
    let setup = InitConfig::new(grid, 5_000, Distribution::Geometric { r: 0.97 })
        .with_m(1)
        .build()
        .unwrap()
        .with_event(Event::inject(
            400,
            Region {
                x0: 0,
                x1: 16,
                y0: 0,
                y1: 16,
            },
            1_000,
            0,
            0,
            1,
        ));

    // Reference: one uninterrupted 600-step run.
    let mut reference = Simulation::new(setup.clone());
    reference.run(600);

    // Interrupted: 250 steps, checkpoint to bytes, restore, 350 more.
    let mut first = Simulation::new(setup);
    first.run(250);
    let bytes = first.checkpoint().encode();
    println!(
        "checkpoint after step {}: {} bytes ({} particles, {} pending events)",
        first.step_index(),
        bytes.len(),
        first.particle_count(),
        1
    );
    drop(first);

    let restored = CheckpointData::decode(&bytes).expect("valid checkpoint");
    let mut resumed = Simulation::restore(restored, SweepMode::Serial);
    resumed.run(350);

    // Bit-exact continuation.
    assert_eq!(reference.particles(), resumed.particles());
    assert_eq!(reference.expected_id_sum(), resumed.expected_id_sum());
    let report = resumed.verify();
    assert!(report.passed());
    println!(
        "resumed run matches uninterrupted run bit-exactly: {} particles, verification {}",
        resumed.particle_count(),
        if report.passed() { "PASS" } else { "FAIL" }
    );
}
